package rodinia

import (
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
	"repro/internal/workloads"
)

const gaussianModule = "rodinia.gaussian"

// gaussianTable holds the Gaussian-elimination kernels (Fan1/Fan2 in
// Rodinia): per pivot column, compute the multiplier column, then update
// the trailing submatrix and right-hand side.
func gaussianTable() map[string]workloads.Kernel {
	return map[string]workloads.Kernel{
		// args: a, m, n, k  — m[i] = a[i*n+k] / a[k*n+k] for i > k
		"fan1": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n, k := int(args[2]), int(args[3])
			a := ctx.Float32s(args[0], n*n)
			m := ctx.Float32s(args[1], n)
			pivot := a[k*n+k]
			if pivot == 0 {
				pivot = 1e-20
			}
			for i := k + 1; i < n; i++ {
				m[i] = a[i*n+k] / pivot
			}
		},
		// args: a, b, m, n, k — subtract m[i]*row(k) from row(i) for i > k
		"fan2": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n, k := int(args[3]), int(args[4])
			a := ctx.Float32s(args[0], n*n)
			b := ctx.Float32s(args[1], n)
			m := ctx.Float32s(args[2], n)
			rows := n - k - 1
			if rows <= 0 {
				return
			}
			par.For(rows, 32, func(lo, hi int) {
				for r := lo; r < hi; r++ {
					i := k + 1 + r
					mi := m[i]
					rowK := a[k*n : k*n+n]
					rowI := a[i*n : i*n+n]
					for j := k; j < n; j++ {
						rowI[j] -= mi * rowK[j]
					}
					b[i] -= mi * b[k]
				}
			})
		},
	}
}

// Gaussian is Rodinia's Gaussian elimination (-s 8192 in the paper).
func Gaussian() *workloads.App {
	return &workloads.App{
		Name:      "Gaussian",
		PaperArgs: "-s 8192 -q",
		Char: workloads.Characteristics{
			Description: "dense Gaussian elimination (Fan1/Fan2 kernels)",
		},
		KernelTables: singleTable(gaussianModule, gaussianTable()),
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "Gaussian", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(gaussianModule, gaussianTable())

				n := workloads.ScaleInt(512, cfg.EffScale(), 32)

				hA := e.AppAlloc(uint64(4 * n * n))
				hB := e.AppAlloc(uint64(4 * n))
				av := e.HostF32(hA, n*n)
				bv := e.HostF32(hB, n)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				rng := workloads.NewLCG(cfg.Seed + 4)
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						av[i*n+j] = rng.Float32()
						if i == j {
							av[i*n+j] += float32(n) // diagonally dominant
						}
					}
					bv[i] = rng.Float32()
				}

				dA := e.Malloc(uint64(4 * n * n))
				dB := e.Malloc(uint64(4 * n))
				dM := e.Malloc(uint64(4 * n))
				e.Memcpy(dA, hA, uint64(4*n*n), crt.MemcpyHostToDevice)
				e.Memcpy(dB, hB, uint64(4*n), crt.MemcpyHostToDevice)

				for k := 0; k < n-1; k++ {
					e.Launch(gaussianModule, "fan1", workloads.Launch1D(n), crt.DefaultStream,
						dA, dM, uint64(n), uint64(k))
					e.Launch(gaussianModule, "fan2", workloads.Launch2D(n, n), crt.DefaultStream,
						dA, dB, dM, uint64(n), uint64(k))
					if cfg.Hook != nil {
						if err := cfg.Hook(k); err != nil {
							return 0, nil, err
						}
					}
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
				}
				e.DeviceSync()
				// Back substitution on the host, as the original does.
				e.Memcpy(hA, dA, uint64(4*n*n), crt.MemcpyDeviceToHost)
				e.Memcpy(hB, dB, uint64(4*n), crt.MemcpyDeviceToHost)
				av = e.HostF32(hA, n*n)
				bv = e.HostF32(hB, n)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				x := make([]float32, n)
				for i := n - 1; i >= 0; i-- {
					s := bv[i]
					for j := i + 1; j < n; j++ {
						s -= av[i*n+j] * x[j]
					}
					x[i] = s / av[i*n+i]
				}
				var sum float64
				for _, v := range x {
					sum += float64(v)
				}
				return sum, nil, nil
			})
		},
	}
}
