package rodinia

import (
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
	"repro/internal/workloads"
)

const hotspot3dModule = "rodinia.hotspot3d"

// hotspot3dTable holds the Hotspot3D kernel: a 7-point thermal stencil
// over a 3-D chip stack.
func hotspot3dTable() map[string]workloads.Kernel {
	return map[string]workloads.Kernel{
		// args: temp, power, out, w, h, d, capBits
		"hotspot3d_step": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			w, h, d := int(args[3]), int(args[4]), int(args[5])
			cap := f32arg(args[6])
			temp := ctx.Float32s(args[0], w*h*d)
			power := ctx.Float32s(args[1], w*h*d)
			out := ctx.Float32s(args[2], w*h*d)
			plane := w * h
			par.For(d, 4, func(lo, hi int) {
				for z := lo; z < hi; z++ {
					for y := 0; y < h; y++ {
						for x := 0; x < w; x++ {
							i := z*plane + y*w + x
							c := temp[i]
							get := func(j int, ok bool) float32 {
								if ok {
									return temp[j]
								}
								return c
							}
							up := get(i-w, y > 0)
							down := get(i+w, y < h-1)
							left := get(i-1, x > 0)
							right := get(i+1, x < w-1)
							below := get(i-plane, z > 0)
							above := get(i+plane, z < d-1)
							out[i] = c + cap*(power[i]+(up+down+left+right+below+above-6*c)/6)
						}
					}
				}
			})
		},
	}
}

// Hotspot3D is Rodinia's 3-D thermal simulation (512×512×8, 1000
// iterations in the paper).
func Hotspot3D() *workloads.App {
	return &workloads.App{
		Name:      "Hotspot3D",
		PaperArgs: "512 8 1000 power_512x8 temp_512x8 output.out",
		Char: workloads.Characteristics{
			Description: "3-D transient thermal simulation (7-point stencil)",
		},
		KernelTables: singleTable(hotspot3dModule, hotspot3dTable()),
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "Hotspot3D", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(hotspot3dModule, hotspot3dTable())

				side := workloads.ScaleInt(256, cfg.EffScale(), 32)
				depth := 8
				iters := workloads.ScaleInt(120, cfg.EffScale(), 8)
				vox := side * side * depth

				hTemp := e.AppAlloc(uint64(4 * vox))
				hPower := e.AppAlloc(uint64(4 * vox))
				tv := e.HostF32(hTemp, vox)
				pw := e.HostF32(hPower, vox)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				rng := workloads.NewLCG(cfg.Seed + 7)
				for i := range tv {
					tv[i] = 300 + 20*rng.Float32()
					pw[i] = rng.Float32() * 0.02
				}

				dTemp := e.Malloc(uint64(4 * vox))
				dPower := e.Malloc(uint64(4 * vox))
				dOut := e.Malloc(uint64(4 * vox))
				e.Memcpy(dTemp, hTemp, uint64(4*vox), crt.MemcpyHostToDevice)
				e.Memcpy(dPower, hPower, uint64(4*vox), crt.MemcpyHostToDevice)

				lc := workloads.Launch2D(side, side)
				for it := 0; it < iters; it++ {
					e.Launch(hotspot3dModule, "hotspot3d_step", lc, crt.DefaultStream,
						dTemp, dPower, dOut, uint64(side), uint64(side), uint64(depth), f32bits(0.3))
					dTemp, dOut = dOut, dTemp
					if cfg.Hook != nil {
						if err := cfg.Hook(it); err != nil {
							return 0, nil, err
						}
					}
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
				}
				e.DeviceSync()
				e.Memcpy(hTemp, dTemp, uint64(4*vox), crt.MemcpyDeviceToHost)
				out := e.HostF32(hTemp, vox)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				var sum float64
				for _, v := range out {
					sum += float64(v)
				}
				return sum, nil, nil
			})
		},
	}
}
