// Package streamapps implements the two stream-oriented NVIDIA CUDA code
// samples used in the paper's Section 4.4.2: simpleStreams and
// UnifiedMemoryStreams (UMS). Both are configured as in the paper —
// simpleStreams scaled from 4 to 128 streams (the V100's concurrent
// kernel maximum) with 1000 repetitions, and UMS with 128 streams and
// 1280 tasks seeded with 12701.
package streamapps

import (
	"fmt"
	"math"

	"repro/internal/crt"
	"repro/internal/kernels"
	"repro/internal/workloads"
)

// SimpleStreams reproduces the simpleStreams sample: an init kernel with
// a configurable inner iteration count, run once over the full array on
// the default stream (non-streamed) and once split across N streams with
// each kernel/memcpy pair in its own stream. The Detail map carries the
// Figure 4b measurements:
//
//	"kernel_ms_nonstreamed" — one full-array kernel execution (ms)
//	"kernel_ms_streamed"    — one per-stream chunk kernel execution (ms)
//	"memcpy_ms_nonstreamed" — one full-array D2H copy (ms)
//	"memcpy_ms_streamed"    — per-chunk copy overlapped across streams (ms)
func SimpleStreams() *workloads.App {
	return &workloads.App{
		Name:      "simpleStreams",
		PaperArgs: "nreps=1000 niterations={5,10,100,500} streams=128 (Blocking Sync)",
		Char: workloads.Characteristics{
			Streams:     true,
			MinStreams:  4,
			MaxStreams:  128,
			Description: "kernel/memcpy overlap across streams (NVIDIA sample)",
		},
		KernelTables: func() map[string]map[string]workloads.Kernel {
			return map[string]map[string]workloads.Kernel{kernels.Module: kernels.Table()}
		},
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "simpleStreams", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(kernels.Module, kernels.Table())

				nstreams := cfg.Streams
				if nstreams == 0 {
					nstreams = 128
				}
				nreps := cfg.Reps
				if nreps == 0 {
					nreps = workloads.ScaleInt(40, cfg.EffScale(), 4)
				}
				niter := cfg.Iters
				if niter == 0 {
					niter = 10
				}
				total := workloads.ScaleInt(1<<20, cfg.EffScale(), 1<<14) // int32 elements
				total = (total / nstreams) * nstreams
				chunk := total / nstreams
				const value = 5

				dArr := e.Malloc(uint64(4 * total))
				hArr := e.MallocHost(uint64(4 * total)) // pinned, as the sample requires for async copies
				streams := make([]crt.StreamHandle, nstreams)
				for i := range streams {
					streams[i] = e.StreamCreate()
				}
				evStart := mustEvent(e)
				evEnd := mustEvent(e)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}

				lcFull := workloads.Launch1D(total)
				lcChunk := workloads.Launch1D(chunk)
				detail := map[string]float64{}

				var kernelNS, kernelSD, copyNS, copySD float64
				measured := 0
				for rep := 0; rep < nreps; rep++ {
					// rep 0 is a warmup for the per-kernel details (cold
					// caches and first-touch page zeroing would skew it).
					timed := rep > 0 || nreps == 1
					// Non-streamed: one kernel over the full array, then
					// one full D2H copy, serialized on the default stream.
					e.FailIf(rt.EventRecord(evStart, crt.DefaultStream))
					e.Launch(kernels.Module, "initArray", lcFull, crt.DefaultStream,
						dArr, uint64(total), uint64(value), uint64(niter))
					e.FailIf(rt.EventRecord(evEnd, crt.DefaultStream))
					e.FailIf(rt.EventSynchronize(evEnd))
					if d, err := rt.EventElapsed(evStart, evEnd); err == nil && timed {
						kernelNS += d.Seconds() * 1e3
					}
					cs, ce := mustEvent(e), mustEvent(e)
					e.FailIf(rt.EventRecord(cs, crt.DefaultStream))
					e.MemcpyAsync(hArr, dArr, uint64(4*total), crt.MemcpyDeviceToHost, crt.DefaultStream)
					e.FailIf(rt.EventRecord(ce, crt.DefaultStream))
					e.FailIf(rt.EventSynchronize(ce))
					if d, err := rt.EventElapsed(cs, ce); err == nil && timed {
						copyNS += d.Seconds() * 1e3
					}

					// Streamed: each kernel/memcpy pair in its own stream.
					// The per-kernel timing brackets stream[0]'s kernel
					// only, before the host submits the remaining streams,
					// so it measures kernel execution rather than host
					// submission.
					ks, ke := mustEvent(e), mustEvent(e)
					e.FailIf(rt.EventRecord(ks, streams[0]))
					e.Launch(kernels.Module, "initArray", lcChunk, streams[0],
						dArr, uint64(chunk), uint64(value), uint64(niter))
					e.FailIf(rt.EventRecord(ke, streams[0]))
					for s := 1; s < nstreams; s++ {
						off := uint64(4 * s * chunk)
						e.Launch(kernels.Module, "initArray", lcChunk, streams[s],
							dArr+off, uint64(chunk), uint64(value), uint64(niter))
					}
					cs2, ce2 := mustEvent(e), mustEvent(e)
					e.FailIf(rt.EventRecord(cs2, streams[0]))
					for s := 0; s < nstreams; s++ {
						off := uint64(4 * s * chunk)
						e.MemcpyAsync(hArr+off, dArr+off, uint64(4*chunk), crt.MemcpyDeviceToHost, streams[s])
					}
					for s := 0; s < nstreams; s++ {
						e.StreamSync(streams[s])
					}
					e.FailIf(rt.EventRecord(ce2, streams[0]))
					e.FailIf(rt.EventSynchronize(ce2))
					if d, err := rt.EventElapsed(ks, ke); err == nil && timed {
						kernelSD += d.Seconds() * 1e3
					}
					if d, err := rt.EventElapsed(cs2, ce2); err == nil && timed {
						copySD += d.Seconds() * 1e3
					}
					if timed {
						measured++
					}
					if cfg.Hook != nil {
						if err := cfg.Hook(rep); err != nil {
							return 0, nil, err
						}
					}
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
				}
				e.DeviceSync()
				// Verify the array holds the expected value.
				hv := e.HostI32(hArr, total)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				var sum float64
				for _, v := range hv {
					sum += float64(v)
				}
				if want := float64(value * total); math.Abs(sum-want) > 0.5 {
					return 0, nil, fmt.Errorf("simpleStreams: checksum %v, want %v", sum, want)
				}
				if measured == 0 {
					measured = 1
				}
				detail["kernel_ms_nonstreamed"] = kernelNS / float64(measured)
				detail["kernel_ms_streamed"] = kernelSD / float64(measured)
				detail["memcpy_ms_nonstreamed"] = copyNS / float64(measured)
				detail["memcpy_ms_streamed"] = copySD / float64(measured)
				return sum, detail, nil
			})
		},
	}
}

// mustEvent creates an event through the env.
func mustEvent(e *workloads.Env) crt.EventHandle {
	h, err := e.RT.EventCreate()
	if err != nil {
		e.FailWith(err)
	}
	return h
}

// UnifiedMemoryStreams reproduces the UMS sample: a task consumer where
// all task data lives in Unified Memory and tasks are consumed by both
// host and device (small tasks on the host, large ones as kernels on one
// of 128 streams), with task sizes randomized from seed 12701 as in the
// paper.
func UnifiedMemoryStreams() *workloads.App {
	return &workloads.App{
		Name:      "UnifiedMemoryStreams",
		PaperArgs: "streams=128 tasks=1280 seed=12701",
		Char: workloads.Characteristics{
			UVM:         true,
			Streams:     true,
			MinStreams:  4,
			MaxStreams:  128,
			Description: "task consumer over Unified Memory, host+device execution",
		},
		KernelTables: func() map[string]map[string]workloads.Kernel {
			return map[string]map[string]workloads.Kernel{kernels.Module: kernels.Table()}
		},
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "UnifiedMemoryStreams", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(kernels.Module, kernels.Table())

				nstreams := cfg.Streams
				if nstreams == 0 {
					nstreams = 128
				}
				ntasks := workloads.ScaleInt(1280, cfg.EffScale(), 32)
				seed := cfg.Seed
				if seed == 0 {
					seed = 12701 // the paper's seed
				}
				iters := cfg.Iters
				if iters == 0 {
					iters = 4
				}

				streams := make([]crt.StreamHandle, nstreams)
				for i := range streams {
					streams[i] = e.StreamCreate()
				}
				// All results in one managed buffer; host and device both
				// write it (CRAC supports this; CRUM's shadow scheme does
				// not when streams interleave).
				dResults := e.MallocManaged(uint64(4 * ntasks))
				rng := workloads.NewLCG(seed)

				// Tasks: managed data buffers of randomized size.
				const hostThreshold = 2048 // elements; small tasks run on the host
				type task struct {
					data uint64
					n    int
					out  uint64
				}
				tasks := make([]task, ntasks)
				for i := range tasks {
					n := 256 + rng.Intn(4096)
					tasks[i] = task{
						data: e.MallocManaged(uint64(4 * n)),
						n:    n,
						out:  dResults + uint64(4*i),
					}
					// Host initialization of managed data (UVM: pages
					// start host-resident).
					dv := e.HostF32(tasks[i].data, n)
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
					for j := range dv {
						dv[j] = 1.0 / float32(1+j%17)
					}
				}

				for i, t := range tasks {
					if t.n < hostThreshold {
						// Host execution, directly on unified memory.
						dv := e.HostF32(t.data, t.n)
						ov := e.HostF32(t.out, 1)
						if e.Err() != nil {
							return 0, nil, e.Err()
						}
						var total float64
						for k := 0; k < iters; k++ {
							total = 0
							for _, v := range dv {
								total += float64(v)
							}
						}
						ov[0] = float32(total)
					} else {
						// Device execution on a round-robin stream.
						e.Launch(kernels.Module, "spinCollect", workloads.Launch1D(t.n),
							streams[i%nstreams], t.data, t.out, uint64(t.n), uint64(iters))
					}
					if cfg.Hook != nil {
						if err := cfg.Hook(i); err != nil {
							return 0, nil, err
						}
					}
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
				}
				e.DeviceSync()
				// Host reads every result from unified memory.
				rv := e.HostF32(dResults, ntasks)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				var sum float64
				for _, v := range rv {
					sum += float64(v)
				}
				return sum, nil, nil
			})
		},
	}
}
