package streamapps

import (
	"testing"

	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/workloads"
)

func newRT(t *testing.T) crt.Runtime {
	t.Helper()
	lib, err := cuda.NewLibrary(cuda.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt := crt.NewNative(lib)
	t.Cleanup(rt.Close)
	return rt
}

func TestSimpleStreamsSelfVerifies(t *testing.T) {
	// The app fails internally if the array does not hold the expected
	// value — so a nil error already proves correctness; check details.
	res, err := SimpleStreams().Run(newRT(t), workloads.RunConfig{
		Scale: 0.2, Streams: 8, Reps: 3, Iters: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Detail
	for _, k := range []string{"kernel_ms_nonstreamed", "kernel_ms_streamed",
		"memcpy_ms_nonstreamed", "memcpy_ms_streamed"} {
		if d[k] <= 0 {
			t.Fatalf("detail %q = %v", k, d[k])
		}
	}
	// The streamed kernel covers 1/8 of the data: it must be faster per
	// kernel than the full-array kernel (Figure 4b's shape).
	if d["kernel_ms_streamed"] >= d["kernel_ms_nonstreamed"] {
		t.Fatalf("streamed %.3fms not below non-streamed %.3fms",
			d["kernel_ms_streamed"], d["kernel_ms_nonstreamed"])
	}
}

func TestSimpleStreamsRespectsStreamLimit(t *testing.T) {
	// 128 streams is the V100 maximum; the paper notes the app fails
	// beyond it. Here the library enforces it.
	_, err := SimpleStreams().Run(newRT(t), workloads.RunConfig{
		Scale: 0.05, Streams: 129, Reps: 1, Iters: 1, Seed: 7})
	if err == nil {
		t.Fatal("129 streams accepted beyond the device limit")
	}
}

func TestUMSDeterministicWithPaperSeed(t *testing.T) {
	cfg := workloads.RunConfig{Scale: 0.15, Streams: 8, Seed: 12701}
	a, err := UnifiedMemoryStreams().Run(newRT(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := UnifiedMemoryStreams().Run(newRT(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum {
		t.Fatalf("seeded task allocation not reproducible: %v vs %v", a.Checksum, b.Checksum)
	}
	if a.Checksum <= 0 {
		t.Fatalf("checksum = %v", a.Checksum)
	}
}

func TestMetadata(t *testing.T) {
	ss, ums := SimpleStreams(), UnifiedMemoryStreams()
	if ss.Char.UVM || !ss.Char.Streams || ss.Char.MaxStreams != 128 {
		t.Fatalf("simpleStreams characteristics = %+v", ss.Char)
	}
	if !ums.Char.UVM || !ums.Char.Streams || ums.Char.MaxStreams != 128 {
		t.Fatalf("UMS characteristics = %+v", ums.Char)
	}
}
