package workloads

import (
	"errors"
	"testing"

	"repro/internal/crt"
	"repro/internal/cuda"
)

func newEnv(t *testing.T) *Env {
	t.Helper()
	lib, err := cuda.NewLibrary(cuda.Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := crt.NewNative(lib)
	t.Cleanup(n.Close)
	return NewEnv(n)
}

func TestEnvStickyError(t *testing.T) {
	e := newEnv(t)
	// Poison the env with a bad free.
	e.Free(0xdeadbeef)
	if e.Err() == nil {
		t.Fatal("bad free did not poison env")
	}
	first := e.Err()
	// Subsequent operations are no-ops and do not replace the error.
	if a := e.Malloc(64); a != 0 {
		t.Fatal("malloc on poisoned env returned an address")
	}
	e.Memset(0, 0, 10)
	e.DeviceSync()
	if e.Err() != first {
		t.Fatal("error was replaced")
	}
}

func TestEnvLaunchUnregisteredModule(t *testing.T) {
	e := newEnv(t)
	e.Launch("nope", "k", Launch1D(1), crt.DefaultStream)
	if e.Err() == nil {
		t.Fatal("launch from unregistered module succeeded")
	}
}

func TestEnvFailWith(t *testing.T) {
	e := newEnv(t)
	sentinel := errors.New("external")
	e.FailWith(sentinel)
	if !errors.Is(e.Err(), sentinel) {
		t.Fatal("FailWith lost the error")
	}
}

func TestLaunchConfigs(t *testing.T) {
	lc := Launch1D(1000)
	if lc.Grid.X != 4 || lc.Block.X != 256 {
		t.Fatalf("Launch1D = %+v", lc)
	}
	if Launch1D(0).Grid.X != 1 {
		t.Fatal("Launch1D(0) should have one block")
	}
	lc2 := Launch2D(33, 17)
	if lc2.Grid.X != 3 || lc2.Grid.Y != 2 {
		t.Fatalf("Launch2D = %+v", lc2)
	}
}

func TestScaleInt(t *testing.T) {
	if ScaleInt(100, 0.5, 1) != 50 {
		t.Fatal("scale 0.5")
	}
	if ScaleInt(100, 0.001, 7) != 7 {
		t.Fatal("floor")
	}
}

func TestRunConfigEffScale(t *testing.T) {
	if (RunConfig{}).EffScale() != 1 {
		t.Fatal("default scale")
	}
	if (RunConfig{Scale: 2}).EffScale() != 2 {
		t.Fatal("explicit scale")
	}
}

func TestLCGDeterminism(t *testing.T) {
	a, b := NewLCG(42), NewLCG(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("LCG diverged")
		}
	}
	c := NewLCG(43)
	if a.Next() == c.Next() {
		t.Fatal("different seeds produced equal streams (unlikely)")
	}
	g := NewLCG(7)
	for i := 0; i < 1000; i++ {
		f := g.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
		n := g.Intn(10)
		if n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %d", n)
		}
	}
	if g.Intn(0) != 0 {
		t.Fatal("Intn(0)")
	}
}

func TestMeasureCountsDeltas(t *testing.T) {
	lib, err := cuda.NewLibrary(cuda.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt := crt.NewNative(lib)
	defer rt.Close()
	// Pre-existing calls must not leak into the measured delta.
	if _, err := rt.Malloc(64); err != nil {
		t.Fatal(err)
	}
	res, err := Measure(rt, "x", func() (float64, map[string]float64, error) {
		if _, err := rt.Malloc(64); err != nil {
			return 0, nil, err
		}
		return 7, map[string]float64{"d": 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum != 7 || res.Detail["d"] != 1 {
		t.Fatalf("result = %+v", res)
	}
	if res.Calls.OtherCalls != 1 {
		t.Fatalf("delta calls = %+v", res.Calls)
	}
	if res.CPS() <= 0 {
		t.Fatal("CPS not positive")
	}
}

func TestMeasurePropagatesError(t *testing.T) {
	lib, _ := cuda.NewLibrary(cuda.Config{})
	rt := crt.NewNative(lib)
	defer rt.Close()
	sentinel := errors.New("app failed")
	if _, err := Measure(rt, "x", func() (float64, map[string]float64, error) {
		return 0, nil, sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}
