package hpgmg

import (
	"testing"

	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/workloads"
)

func run(t *testing.T, cfg workloads.RunConfig) (workloads.Result, *cuda.Library) {
	t.Helper()
	lib, err := cuda.NewLibrary(cuda.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt := crt.NewNative(lib)
	t.Cleanup(rt.Close)
	res, err := App().Run(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, lib
}

func TestMultigridConverges(t *testing.T) {
	// More V-cycles must not diverge: the solution stays finite, and the
	// point source spreads (positive solution mass).
	res, lib := run(t, workloads.RunConfig{Scale: 0.4, Seed: 7})
	if res.Checksum <= 0 || res.Checksum != res.Checksum {
		t.Fatalf("checksum = %v", res.Checksum)
	}
	// Grids live in UVM: the pager must have seen traffic on both sides
	// (kernels fault to device, the host reads the norm back).
	st := lib.UVM().Stats()
	if st.DeviceFaults == 0 || st.HostFaults == 0 {
		t.Fatalf("UVM traffic missing: %+v", st)
	}
	if st.RegisteredRegions == 0 {
		t.Fatal("no managed regions registered")
	}
}

func TestHighCPSCharacter(t *testing.T) {
	// HPGMG's defining property (paper Table 1): many launches per unit
	// of data — far more kernels than managed regions.
	res, lib := run(t, workloads.RunConfig{Scale: 0.3, Seed: 7})
	if res.Calls.LaunchKernel < 100 {
		t.Fatalf("launches = %d, want hundreds of small kernels", res.Calls.LaunchKernel)
	}
	if regions := lib.UVM().Stats().RegisteredRegions; int(res.Calls.LaunchKernel) < 10*regions {
		t.Fatalf("launches (%d) should dwarf regions (%d)", res.Calls.LaunchKernel, regions)
	}
}

func TestMetadata(t *testing.T) {
	app := App()
	if !app.Char.UVM || app.Char.Streams {
		t.Fatalf("characteristics = %+v (paper Table 1: UVM yes, streams no)", app.Char)
	}
}
