// Package hpgmg implements a scaled-down HPGMG-FV (High-Performance
// Geometric MultiGrid, finite-volume), the first real-world benchmark of
// the paper's Section 4.4.3. The paper runs "7 8" over one MPI rank,
// reaching ~35,000 CUDA calls per second: geometric multigrid issues a
// torrent of small kernels (smooth, residual, restrict, prolong) across
// a hierarchy of grids, which is exactly the high-CPS behaviour this
// implementation reproduces. Grids live in Unified Memory (Table 1
// marks HPGMG-FV as UVM, no streams), and the host reads the residual
// norm from managed memory each V-cycle.
package hpgmg

import (
	"math"

	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
	"repro/internal/workloads"
)

// Module is the HPGMG fat-binary name.
const Module = "hpgmg"

// Table returns the multigrid kernels. All grids are cubes of side w
// with one ghost cell folded into the stencil bounds.
func Table() map[string]workloads.Kernel {
	return map[string]workloads.Kernel{
		// args: u, rhs, w, color — red-black Gauss-Seidel half-sweep
		// (7-point). Cells of one color only read the other color, so
		// the in-place update is deterministic under any parallel
		// schedule — the property the checksum tests rely on.
		"smooth": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			w := int(args[2])
			color := int(args[3]) & 1
			u := ctx.Float32s(args[0], w*w*w)
			rhs := ctx.Float32s(args[1], w*w*w)
			plane := w * w
			par.For(w, 8, func(lo, hi int) {
				for z := lo; z < hi; z++ {
					if z == 0 || z == w-1 {
						continue
					}
					for y := 1; y < w-1; y++ {
						row := z*plane + y*w
						xStart := 1 + (z+y+1+color)&1
						for x := xStart; x < w-1; x += 2 {
							i := row + x
							u[i] = (u[i-1] + u[i+1] + u[i-w] + u[i+w] +
								u[i-plane] + u[i+plane] + rhs[i]) * (1.0 / 6.0)
						}
					}
				}
			})
		},
		// args: u, rhs, res, w — residual r = rhs - A·u
		"residual": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			w := int(args[3])
			u := ctx.Float32s(args[0], w*w*w)
			rhs := ctx.Float32s(args[1], w*w*w)
			res := ctx.Float32s(args[2], w*w*w)
			plane := w * w
			par.For(w, 8, func(lo, hi int) {
				for z := lo; z < hi; z++ {
					if z == 0 || z == w-1 {
						continue
					}
					for y := 1; y < w-1; y++ {
						row := z*plane + y*w
						for x := 1; x < w-1; x++ {
							i := row + x
							au := 6*u[i] - u[i-1] - u[i+1] - u[i-w] - u[i+w] - u[i-plane] - u[i+plane]
							res[i] = rhs[i] - au
						}
					}
				}
			})
		},
		// args: fine, coarse, wf — full-weight restriction to wf/2
		"restrict": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			wf := int(args[2])
			wc := wf / 2
			fine := ctx.Float32s(args[0], wf*wf*wf)
			coarse := ctx.Float32s(args[1], wc*wc*wc)
			planeF := wf * wf
			par.For(wc, 4, func(lo, hi int) {
				for z := lo; z < hi; z++ {
					for y := 0; y < wc; y++ {
						for x := 0; x < wc; x++ {
							var s float32
							for dz := 0; dz < 2; dz++ {
								for dy := 0; dy < 2; dy++ {
									for dx := 0; dx < 2; dx++ {
										s += fine[(2*z+dz)*planeF+(2*y+dy)*wf+(2*x+dx)]
									}
								}
							}
							coarse[z*wc*wc+y*wc+x] = s * 0.125
						}
					}
				}
			})
		},
		// args: coarse, fine, wf — piecewise-constant prolongation + correction
		"prolong": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			wf := int(args[2])
			wc := wf / 2
			coarse := ctx.Float32s(args[0], wc*wc*wc)
			fine := ctx.Float32s(args[1], wf*wf*wf)
			planeF := wf * wf
			par.For(wf, 8, func(lo, hi int) {
				for z := lo; z < hi; z++ {
					cz := z / 2
					for y := 0; y < wf; y++ {
						cy := y / 2
						for x := 0; x < wf; x++ {
							fine[z*planeF+y*wf+x] += coarse[cz*wc*wc+cy*wc+x/2]
						}
					}
				}
			})
		},
		// args: res, out, w — L2 norm of the residual into out[0]
		"norm": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			w := int(args[2])
			res := ctx.Float32s(args[0], w*w*w)
			out := ctx.Float32s(args[1], 1)
			var s float64
			for _, v := range res {
				s += float64(v) * float64(v)
			}
			out[0] = float32(math.Sqrt(s))
		},
		// args: buf, w — zero a grid
		"zero": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			w := int(args[1])
			buf := ctx.Float32s(args[0], w*w*w)
			par.For(len(buf), 1<<14, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					buf[i] = 0
				}
			})
		},
	}
}

// App returns the HPGMG-FV application.
func App() *workloads.App {
	return &workloads.App{
		Name:      "HPGMG-FV",
		PaperArgs: "7 8 (single MPI rank; ~35K CUDA calls/second)",
		Char: workloads.Characteristics{
			UVM:         true,
			Description: "finite-volume geometric multigrid, many tiny kernels, UVM grids",
		},
		KernelTables: func() map[string]map[string]workloads.Kernel {
			return map[string]map[string]workloads.Kernel{Module: Table()}
		},
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "HPGMG-FV", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(Module, Table())

				finest := workloads.ScaleInt(64, cfg.EffScale(), 16)
				// Round down to a power of two ≥ 8.
				w := 8
				for w*2 <= finest {
					w *= 2
				}
				vcycles := workloads.ScaleInt(24, cfg.EffScale(), 4)
				const smoothSweeps = 2

				// Level grids in Unified Memory.
				var widths []int
				for lw := w; lw >= 4; lw /= 2 {
					widths = append(widths, lw)
				}
				levels := len(widths)
				u := make([]uint64, levels)
				rhs := make([]uint64, levels)
				res := make([]uint64, levels)
				for l, lw := range widths {
					bytes := uint64(4 * lw * lw * lw)
					u[l] = e.MallocManaged(bytes)
					rhs[l] = e.MallocManaged(bytes)
					res[l] = e.MallocManaged(bytes)
				}
				dNorm := e.MallocManaged(4)

				// RHS on the finest level: a point source, set by the host
				// directly in managed memory.
				fv := e.HostF32(rhs[0], w*w*w)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				fv[(w/2)*(w*w)+(w/2)*w+w/2] = 1000
				one := crt.LaunchConfig{Grid: crt.Dim3{X: 1}, Block: crt.Dim3{X: 1}}
				lc := func(lw int) crt.LaunchConfig { return workloads.Launch1D(lw * lw * lw) }

				var lastNorm float64
				for cyc := 0; cyc < vcycles; cyc++ {
					// Downstroke: smooth, residual, restrict.
					for l := 0; l < levels-1; l++ {
						lw := widths[l]
						for s := 0; s < 2*smoothSweeps; s++ {
							e.Launch(Module, "smooth", lc(lw), crt.DefaultStream,
								u[l], rhs[l], uint64(lw), uint64(s&1))
						}
						e.Launch(Module, "residual", lc(lw), crt.DefaultStream,
							u[l], rhs[l], res[l], uint64(lw))
						e.Launch(Module, "restrict", lc(lw/2), crt.DefaultStream,
							res[l], rhs[l+1], uint64(lw))
						e.Launch(Module, "zero", lc(lw/2), crt.DefaultStream,
							u[l+1], uint64(lw/2))
					}
					// Coarsest solve: extra smoothing.
					bw := widths[levels-1]
					for s := 0; s < 16; s++ {
						e.Launch(Module, "smooth", lc(bw), crt.DefaultStream,
							u[levels-1], rhs[levels-1], uint64(bw), uint64(s&1))
					}
					// Upstroke: prolong + smooth.
					for l := levels - 2; l >= 0; l-- {
						lw := widths[l]
						e.Launch(Module, "prolong", lc(lw), crt.DefaultStream,
							u[l+1], u[l], uint64(lw))
						for s := 0; s < 2*smoothSweeps; s++ {
							e.Launch(Module, "smooth", lc(lw), crt.DefaultStream,
								u[l], rhs[l], uint64(lw), uint64(s&1))
						}
					}
					// Convergence check: the host reads the norm straight
					// from unified memory (a UVM host fault).
					e.Launch(Module, "residual", lc(w), crt.DefaultStream,
						u[0], rhs[0], res[0], uint64(w))
					e.Launch(Module, "norm", one, crt.DefaultStream, res[0], dNorm, uint64(w))
					e.DeviceSync()
					nv := e.HostF32(dNorm, 1)
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
					lastNorm = float64(nv[0])
					if cfg.Hook != nil {
						if err := cfg.Hook(cyc); err != nil {
							return 0, nil, err
						}
					}
				}
				// Checksum: solution sum plus final residual norm.
				uv := e.HostF32(u[0], w*w*w)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				var sum float64
				for _, v := range uv {
					sum += float64(v)
				}
				return sum + lastNorm, nil, nil
			})
		},
	}
}
