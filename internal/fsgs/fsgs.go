// Package fsgs models the cost of switching the x86-64 "fs" segment base
// register when control transfers between the upper-half application and
// the lower-half CUDA library.
//
// On an unpatched Linux kernel the fs base can only be changed through
// the arch_prctl system call, so every upper→lower trampoline crossing
// pays a kernel round trip (~100–200ns on the paper's hardware). The
// FSGSBASE kernel patch (evaluated in Section 4.4.5 and Figure 6 of the
// paper) exposes the WRFSBASE/RDFSBASE instructions, reducing the switch
// to a register write (a few nanoseconds).
//
// The Syscall switcher models the kernel round trip with a calibrated
// busy-spin of ~150ns. A real getpid(2) is deliberately NOT used: in
// sandboxed/container kernels a syscall costs microseconds (measured
// 8.3µs in this repository's CI sandbox, ~100× bare metal), which would
// distort every overhead figure the paper reports. The calibrated spin
// preserves the genuine cost *ratio* between the unpatched switch and
// the FSGSBASE register write, which is what Figure 6 compares.
package fsgs

import (
	"sync/atomic"

	"repro/internal/spin"
)

// syscallCostNs is the modelled arch_prctl(SET_FS) round-trip latency on
// the paper's hardware (CentOS 7 / Linux 3.10 era, pre-FSGSBASE).
const syscallCostNs = 150

// wrfsbaseCostNs is the modelled WRFSBASE instruction latency.
const wrfsbaseCostNs = 4

// Switcher models one mechanism for changing the fs base register.
// Enter switches fs to the lower-half value before a trampoline call and
// Exit switches it back afterwards.
type Switcher interface {
	// Enter installs the lower-half fs base.
	Enter()
	// Exit restores the upper-half fs base.
	Exit()
	// Name identifies the mechanism ("syscall" or "fsgsbase").
	Name() string
	// Switches reports the cumulative number of Enter/Exit transitions.
	Switches() uint64
}

// Syscall switches the fs register through a kernel call, as on an
// unpatched Linux kernel. Each transition pays the modelled kernel
// round-trip latency.
type Syscall struct {
	fsBase    atomic.Uint64
	n         atomic.Uint64
	spinIters int
}

// NewSyscall returns a kernel-call-based switcher.
func NewSyscall() *Syscall {
	return &Syscall{spinIters: spin.Iters(syscallCostNs)}
}

// Enter pays one kernel round trip (arch_prctl(ARCH_SET_FS) stand-in).
func (s *Syscall) Enter() {
	spin.ForIters(s.spinIters)
	s.fsBase.Store(0x1000)
	s.n.Add(1)
}

// Exit pays one kernel round trip to restore the upper-half fs base.
func (s *Syscall) Exit() {
	spin.ForIters(s.spinIters)
	s.fsBase.Store(0x2000)
	s.n.Add(1)
}

// Name returns "syscall".
func (s *Syscall) Name() string { return "syscall" }

// Switches returns the transition count.
func (s *Syscall) Switches() uint64 { return s.n.Load() }

// FSGSBase switches the fs register with the WRFSBASE instruction, as on
// a kernel with the FSGSBASE patch: a register write with no kernel
// entry.
type FSGSBase struct {
	fsBase atomic.Uint64 // the simulated fs base register
	n      atomic.Uint64

	spinIters int
}

// NewFSGSBase returns a WRFSBASE-based switcher.
func NewFSGSBase() *FSGSBase {
	return &FSGSBase{spinIters: spin.Iters(wrfsbaseCostNs)}
}

// Enter writes the lower-half fs base directly (no kernel entry).
func (f *FSGSBase) Enter() {
	spin.ForIters(f.spinIters)
	f.fsBase.Store(0x1000)
	f.n.Add(1)
}

// Exit restores the upper-half fs base directly.
func (f *FSGSBase) Exit() {
	spin.ForIters(f.spinIters)
	f.fsBase.Store(0x2000)
	f.n.Add(1)
}

// Name returns "fsgsbase".
func (f *FSGSBase) Name() string { return "fsgsbase" }

// Switches returns the transition count.
func (f *FSGSBase) Switches() uint64 { return f.n.Load() }

// None is a no-op switcher used for native (non-CRAC) execution, where
// the application calls the CUDA library directly and no fs switch
// occurs.
type None struct{}

// Enter does nothing.
func (None) Enter() {}

// Exit does nothing.
func (None) Exit() {}

// Name returns "none".
func (None) Name() string { return "none" }

// Switches always returns 0.
func (None) Switches() uint64 { return 0 }
