package fsgs

import (
	"testing"
	"time"
)

func TestSwitcherCounts(t *testing.T) {
	for _, sw := range []Switcher{NewSyscall(), NewFSGSBase(), None{}} {
		sw.Enter()
		sw.Exit()
		sw.Enter()
		sw.Exit()
		want := uint64(4)
		if sw.Name() == "none" {
			want = 0
		}
		if got := sw.Switches(); got != want {
			t.Fatalf("%s switches = %d, want %d", sw.Name(), got, want)
		}
	}
}

func TestNames(t *testing.T) {
	if NewSyscall().Name() != "syscall" || NewFSGSBase().Name() != "fsgsbase" || (None{}).Name() != "none" {
		t.Fatal("switcher names")
	}
}

// TestCostOrdering verifies the property Figure 6 relies on: the
// syscall-based switch is substantially more expensive than the
// FSGSBASE register write.
func TestCostOrdering(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts the modelled switch costs")
	}
	timeIt := func(sw Switcher) time.Duration {
		const n = 20000
		start := time.Now()
		for i := 0; i < n; i++ {
			sw.Enter()
			sw.Exit()
		}
		return time.Since(start) / n
	}
	// Warm both paths.
	sys, fsg := NewSyscall(), NewFSGSBase()
	timeIt(sys)
	timeIt(fsg)
	tSys, tFsg := timeIt(sys), timeIt(fsg)
	if tSys < 2*tFsg {
		t.Fatalf("cost ordering not preserved: syscall %v vs fsgsbase %v", tSys, tFsg)
	}
	t.Logf("syscall switch pair: %v, fsgsbase: %v", tSys, tFsg)
}
