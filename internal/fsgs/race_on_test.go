//go:build race

package fsgs

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation distorts the timing properties the
// cost-ordering test asserts.
const raceEnabled = true
