//go:build !race

package fsgs

const raceEnabled = false
