package cuda

import (
	"fmt"

	"repro/internal/memview"
	"repro/internal/uvm"
)

// DevCtx is the view of memory a running kernel has. It resolves raw
// 64-bit pointers (UVA addresses) into typed slices over the simulated
// memory — the analogue of a CUDA kernel dereferencing global-memory
// pointers directly. Accesses to managed ranges fault pages onto the
// device through the UVM pager, as the hardware would.
//
// Kernels are "device code": like real CUDA kernels, they have no error
// channel, so invalid accesses panic (the simulator's equivalent of a
// device-side fault aborting the launch).
type DevCtx struct {
	lib *Library
}

// resolve returns a byte view of [addr, addr+n), accounting UVM traffic.
func (c *DevCtx) resolve(addr, n uint64) []byte {
	if c.lib.mgdArena.contains(addr) {
		if _, err := c.lib.uvm.Access(uvm.Device, addr, n); err != nil {
			panic(fmt.Sprintf("cuda: device fault: %v", err))
		}
	}
	b, err := c.lib.space.Slice(addr, n)
	if err != nil {
		panic(fmt.Sprintf("cuda: device access to %#x+%d: %v", addr, n, err))
	}
	return b
}

// Bytes returns a mutable byte view of device-visible memory.
func (c *DevCtx) Bytes(addr, n uint64) []byte { return c.resolve(addr, n) }

// Float32s views count float32 elements at addr.
func (c *DevCtx) Float32s(addr uint64, count int) []float32 {
	return memview.Float32s(c.resolve(addr, uint64(count)*4), count)
}

// Float64s views count float64 elements at addr.
func (c *DevCtx) Float64s(addr uint64, count int) []float64 {
	return memview.Float64s(c.resolve(addr, uint64(count)*8), count)
}

// Int32s views count int32 elements at addr.
func (c *DevCtx) Int32s(addr uint64, count int) []int32 {
	return memview.Int32s(c.resolve(addr, uint64(count)*4), count)
}

// Uint32s views count uint32 elements at addr.
func (c *DevCtx) Uint32s(addr uint64, count int) []uint32 {
	return memview.Uint32s(c.resolve(addr, uint64(count)*4), count)
}

// Uint64s views count uint64 elements at addr.
func (c *DevCtx) Uint64s(addr uint64, count int) []uint64 {
	return memview.Uint64s(c.resolve(addr, uint64(count)*8), count)
}
