package cuda

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/addrspace"
)

// allocAlign is the allocation granularity: real cudaMalloc returns
// 256-byte-aligned pointers.
const allocAlign = 256

// arena is the deterministic allocation arena behind one family of CUDA
// allocation calls (device, pinned-host, or managed).
//
// It reproduces the behaviours the paper's implementation sections hinge
// on:
//
//   - The first allocation maps a large arena with *several* mmap calls,
//     and later allocations usually perform no mmap at all
//     (Section 3.2.1: "a single cudaMalloc call can make many calls to
//     mmap. ... Subsequent cudaMalloc call might not call mmap at all").
//   - Allocation is deterministic: replaying an identical malloc/free
//     sequence on a fresh arena yields identical addresses
//     (Section 3.2.4: "CRAC relies on determinism of the CUDA library
//     allocation"). This is guaranteed by first-fit over an
//     address-ordered free list and deterministic region placement.
//   - A single global lock serializes allocation, matching the extra
//     lock the paper notes concurrent streams would force on the
//     lower-half cudaMalloc path (Section 3.1, "Log-and-replay").
type arena struct {
	name   string
	space  *addrspace.Space
	half   addrspace.Half
	label  string
	maxMap uint64 // total mapping budget (device memory size etc.)

	growthChunk uint64 // bytes added per growth episode
	growthMmaps int    // number of mmap calls per growth episode

	mu     sync.Mutex
	chunks []chunkInfo
	free   []block           // sorted by addr
	live   map[uint64]uint64 // addr -> size
	order  []uint64          // live allocation addresses in alloc order
	mapped uint64            // bytes currently mapped
	peak   uint64            // high-water mark of live bytes
	liveSz uint64            // current live bytes
	allocs uint64            // cumulative alloc count
	frees  uint64            // cumulative free count
	mmaps  uint64            // cumulative mmap calls made by this arena
}

type chunkInfo struct {
	start, size uint64
}

// block is a free range inside one chunk. Blocks never span chunks, so an
// allocation is always contiguous in one mapped region.
type block struct {
	addr, size uint64
	chunk      int
}

func newArena(space *addrspace.Space, half addrspace.Half, name, label string, growthChunk uint64, growthMmaps int, maxMap uint64) *arena {
	if growthMmaps < 1 {
		growthMmaps = 1
	}
	return &arena{
		name:        name,
		space:       space,
		half:        half,
		label:       label,
		maxMap:      maxMap,
		growthChunk: growthChunk,
		growthMmaps: growthMmaps,
		live:        make(map[uint64]uint64),
	}
}

func alignUp(n, a uint64) uint64 { return (n + a - 1) &^ (a - 1) }

// grow maps more backing memory as growthMmaps separate mmap calls,
// creating one or more chunks. need is the minimum usable size required.
func (a *arena) grow(need uint64) error {
	total := a.growthChunk
	if need > total {
		total = alignUp(need, addrspace.PageSize)
	}
	if a.maxMap > 0 && a.mapped+total > a.maxMap {
		// Last chance: a dedicated mapping of exactly the needed size.
		total = alignUp(need, addrspace.PageSize)
		if a.mapped+total > a.maxMap {
			return errf(ErrorMemoryAllocation, a.name,
				"arena exhausted: mapped %d + need %d > budget %d", a.mapped, total, a.maxMap)
		}
	}
	per := alignUp(total/uint64(a.growthMmaps), addrspace.PageSize)
	if per == 0 {
		per = addrspace.PageSize
	}
	var mappedNow uint64
	for i := 0; i < a.growthMmaps && mappedNow < total; i++ {
		sz := per
		if i == a.growthMmaps-1 || mappedNow+sz > total {
			sz = total - mappedNow
			sz = alignUp(sz, addrspace.PageSize)
		}
		if sz == 0 {
			break
		}
		start, err := a.space.MMap(0, sz, addrspace.ProtRW, 0, a.half, a.label)
		if err != nil {
			return errf(ErrorMemoryAllocation, a.name, "mmap: %v", err)
		}
		a.mmaps++
		a.mapped += sz
		mappedNow += sz
		ci := len(a.chunks)
		a.chunks = append(a.chunks, chunkInfo{start: start, size: sz})
		a.insertFree(block{addr: start, size: sz, chunk: ci})
	}
	// A fresh chunk may not individually satisfy need even if the total
	// does; ensure at least one free block is large enough.
	for _, b := range a.free {
		if b.size >= need {
			return nil
		}
	}
	// Map one dedicated chunk big enough for the request.
	sz := alignUp(need, addrspace.PageSize)
	if a.maxMap > 0 && a.mapped+sz > a.maxMap {
		return errf(ErrorMemoryAllocation, a.name, "arena exhausted for %d-byte request", need)
	}
	start, err := a.space.MMap(0, sz, addrspace.ProtRW, 0, a.half, a.label)
	if err != nil {
		return errf(ErrorMemoryAllocation, a.name, "mmap: %v", err)
	}
	a.mmaps++
	a.mapped += sz
	ci := len(a.chunks)
	a.chunks = append(a.chunks, chunkInfo{start: start, size: sz})
	a.insertFree(block{addr: start, size: sz, chunk: ci})
	return nil
}

// insertFree inserts b keeping the list address-sorted and coalescing
// with neighbours in the same chunk.
func (a *arena) insertFree(b block) {
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].addr >= b.addr })
	a.free = append(a.free, block{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = b
	// Coalesce with successor.
	if i+1 < len(a.free) {
		n := a.free[i+1]
		if n.chunk == b.chunk && a.free[i].addr+a.free[i].size == n.addr {
			a.free[i].size += n.size
			a.free = append(a.free[:i+1], a.free[i+2:]...)
		}
	}
	// Coalesce with predecessor.
	if i > 0 {
		p := a.free[i-1]
		if p.chunk == a.free[i].chunk && p.addr+p.size == a.free[i].addr {
			a.free[i-1].size += a.free[i].size
			a.free = append(a.free[:i], a.free[i+1:]...)
		}
	}
}

// alloc returns the address of a new allocation of the given size.
func (a *arena) alloc(size uint64) (uint64, error) {
	if size == 0 {
		return 0, errf(ErrorInvalidValue, a.name, "zero-size allocation")
	}
	size = alignUp(size, allocAlign)

	a.mu.Lock()
	defer a.mu.Unlock()

	idx := a.firstFit(size)
	if idx < 0 {
		if err := a.grow(size); err != nil {
			return 0, err
		}
		idx = a.firstFit(size)
		if idx < 0 {
			return 0, errf(ErrorMemoryAllocation, a.name, "no fit for %d bytes after growth", size)
		}
	}
	b := a.free[idx]
	addr := b.addr
	if b.size == size {
		a.free = append(a.free[:idx], a.free[idx+1:]...)
	} else {
		a.free[idx].addr += size
		a.free[idx].size -= size
	}
	a.live[addr] = size
	a.order = append(a.order, addr)
	a.liveSz += size
	if a.liveSz > a.peak {
		a.peak = a.liveSz
	}
	a.allocs++
	return addr, nil
}

// firstFit returns the index of the lowest-address free block that fits,
// or -1.
func (a *arena) firstFit(size uint64) int {
	for i, b := range a.free {
		if b.size >= size {
			return i
		}
	}
	return -1
}

// release frees the allocation based at addr.
func (a *arena) release(addr uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	size, ok := a.live[addr]
	if !ok {
		return errf(ErrorInvalidDevicePointer, a.name, "free of unallocated pointer %#x", addr)
	}
	delete(a.live, addr)
	for i, o := range a.order {
		if o == addr {
			a.order = append(a.order[:i], a.order[i+1:]...)
			break
		}
	}
	a.liveSz -= size
	a.frees++
	a.insertFree(block{addr: addr, size: size, chunk: a.chunkOf(addr)})
	return nil
}

func (a *arena) chunkOf(addr uint64) int {
	for i, c := range a.chunks {
		if addr >= c.start && addr < c.start+c.size {
			return i
		}
	}
	return -1
}

// contains reports whether addr falls inside any chunk of the arena.
func (a *arena) contains(addr uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.chunkOf(addr) >= 0
}

// sizeOf returns the live allocation size at addr, if live.
func (a *arena) sizeOf(addr uint64) (uint64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.live[addr]
	return s, ok
}

// Allocation is one live allocation (an "active malloc" in the paper's
// terms, Section 3.2.3).
type Allocation struct {
	Addr uint64
	Size uint64
}

// liveAllocations returns the active mallocs in allocation order. This is
// exactly the set whose contents CRAC saves at checkpoint — not the whole
// arena (Section 3.2.3: "we only save the memory associated with active
// mallocs").
func (a *arena) liveAllocations() []Allocation {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Allocation, 0, len(a.order))
	for _, addr := range a.order {
		out = append(out, Allocation{Addr: addr, Size: a.live[addr]})
	}
	return out
}

// arenaStats summarizes the arena for experiments and tests.
type arenaStats struct {
	Mapped    uint64
	Live      uint64
	Peak      uint64
	LiveCount int
	Allocs    uint64
	Frees     uint64
	Mmaps     uint64
	Chunks    int
}

func (a *arena) stats() arenaStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return arenaStats{
		Mapped:    a.mapped,
		Live:      a.liveSz,
		Peak:      a.peak,
		LiveCount: len(a.live),
		Allocs:    a.allocs,
		Frees:     a.frees,
		Mmaps:     a.mmaps,
		Chunks:    len(a.chunks),
	}
}

// unmapAll releases every chunk back to the address space (library
// teardown when the lower half is discarded).
func (a *arena) unmapAll() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, c := range a.chunks {
		_ = a.space.MUnmap(c.start, c.size)
	}
	a.chunks = nil
	a.free = nil
	a.live = map[uint64]uint64{}
	a.order = nil
	a.mapped = 0
	a.liveSz = 0
}

// debugString renders the arena state for diagnostics.
func (a *arena) debugString() string {
	st := a.stats()
	return fmt.Sprintf("%s: mapped=%d live=%d(%d allocs) peak=%d mmaps=%d chunks=%d",
		a.name, st.Mapped, st.Live, st.LiveCount, st.Peak, st.Mmaps, st.Chunks)
}
