package cuda

import (
	"time"

	"repro/internal/gpusim"
)

// StreamCreate mirrors cudaStreamCreate. User streams are bounded by the
// device's maximum concurrent-kernel count (128 on the V100): the paper
// notes that simpleStreams "fails if the stream count is increased beyond
// the max limit", which this reproduces.
func (l *Library) StreamCreate() (Stream, error) {
	if err := l.touch("cudaStreamCreate"); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.streams) >= l.dev.Properties().MaxConcurrentKernels {
		return 0, errf(ErrorLaunchFailure, "cudaStreamCreate",
			"stream limit %d exceeded", l.dev.Properties().MaxConcurrentKernels)
	}
	gs, err := l.dev.NewStream()
	if err != nil {
		return 0, errf(ErrorLaunchFailure, "cudaStreamCreate", "%v", err)
	}
	l.nextStream++
	h := l.nextStream
	l.streams[h] = gs
	return h, nil
}

// StreamDestroy mirrors cudaStreamDestroy (drains pending work first).
func (l *Library) StreamDestroy(h Stream) error {
	if err := l.touch("cudaStreamDestroy"); err != nil {
		return err
	}
	if h == DefaultStream {
		return errf(ErrorInvalidResourceHandle, "cudaStreamDestroy", "cannot destroy the default stream")
	}
	l.mu.Lock()
	gs, ok := l.streams[h]
	if ok {
		delete(l.streams, h)
	}
	l.mu.Unlock()
	if !ok {
		return errf(ErrorInvalidResourceHandle, "cudaStreamDestroy", "unknown stream %d", uint64(h))
	}
	gs.Destroy()
	return nil
}

// StreamSynchronize mirrors cudaStreamSynchronize.
func (l *Library) StreamSynchronize(h Stream) error {
	if err := l.touch("cudaStreamSynchronize"); err != nil {
		return err
	}
	gs, err := l.lookupStream("cudaStreamSynchronize", h)
	if err != nil {
		return err
	}
	gs.Synchronize()
	return nil
}

// lookupStream resolves a stream handle (0 = default stream).
func (l *Library) lookupStream(op string, h Stream) (*gpusim.Stream, error) {
	if h == DefaultStream {
		return l.defaultStream, nil
	}
	l.mu.Lock()
	gs, ok := l.streams[h]
	l.mu.Unlock()
	if !ok {
		return nil, errf(ErrorInvalidResourceHandle, op, "unknown stream %d", uint64(h))
	}
	return gs, nil
}

// StreamCount returns the number of live user streams.
func (l *Library) StreamCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.streams)
}

// Streams returns the live user stream handles in creation order
// (handles are assigned monotonically).
func (l *Library) Streams() []Stream {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Stream, 0, len(l.streams))
	for h := range l.streams {
		out = append(out, h)
	}
	// insertion sort by handle; stream counts are small
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// EventCreate mirrors cudaEventCreate.
func (l *Library) EventCreate() (Event, error) {
	if err := l.touch("cudaEventCreate"); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextEvent++
	h := l.nextEvent
	l.events[h] = l.dev.NewEvent()
	return h, nil
}

// EventDestroy mirrors cudaEventDestroy.
func (l *Library) EventDestroy(h Event) error {
	if err := l.touch("cudaEventDestroy"); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.events[h]; !ok {
		return errf(ErrorInvalidResourceHandle, "cudaEventDestroy", "unknown event %d", uint64(h))
	}
	delete(l.events, h)
	return nil
}

// EventRecord mirrors cudaEventRecord.
func (l *Library) EventRecord(e Event, s Stream) error {
	if err := l.touch("cudaEventRecord"); err != nil {
		return err
	}
	ge, err := l.lookupEvent("cudaEventRecord", e)
	if err != nil {
		return err
	}
	gs, err := l.lookupStream("cudaEventRecord", s)
	if err != nil {
		return err
	}
	return ge.Record(gs)
}

// EventSynchronize mirrors cudaEventSynchronize.
func (l *Library) EventSynchronize(e Event) error {
	if err := l.touch("cudaEventSynchronize"); err != nil {
		return err
	}
	ge, err := l.lookupEvent("cudaEventSynchronize", e)
	if err != nil {
		return err
	}
	if err := ge.Synchronize(); err != nil {
		return errf(ErrorNotReady, "cudaEventSynchronize", "%v", err)
	}
	return nil
}

// EventElapsed mirrors cudaEventElapsedTime.
func (l *Library) EventElapsed(start, end Event) (time.Duration, error) {
	if err := l.touch("cudaEventElapsedTime"); err != nil {
		return 0, err
	}
	gs, err := l.lookupEvent("cudaEventElapsedTime", start)
	if err != nil {
		return 0, err
	}
	ge, err := l.lookupEvent("cudaEventElapsedTime", end)
	if err != nil {
		return 0, err
	}
	d, err := gpusim.Elapsed(gs, ge)
	if err != nil {
		return 0, errf(ErrorNotReady, "cudaEventElapsedTime", "%v", err)
	}
	return d, nil
}

func (l *Library) lookupEvent(op string, h Event) (*gpusim.Event, error) {
	l.mu.Lock()
	ge, ok := l.events[h]
	l.mu.Unlock()
	if !ok {
		return nil, errf(ErrorInvalidResourceHandle, op, "unknown event %d", uint64(h))
	}
	return ge, nil
}

// StreamWaitEvent mirrors cudaStreamWaitEvent: work submitted to the
// stream after this call waits for the event to complete.
func (l *Library) StreamWaitEvent(s Stream, e Event) error {
	if err := l.touch("cudaStreamWaitEvent"); err != nil {
		return err
	}
	gs, err := l.lookupStream("cudaStreamWaitEvent", s)
	if err != nil {
		return err
	}
	ge, err := l.lookupEvent("cudaStreamWaitEvent", e)
	if err != nil {
		return err
	}
	return gs.WaitEvent(ge)
}

// LaunchKernel mirrors cudaLaunchKernel: it enqueues the named kernel of
// a registered fat binary on the given stream. Pointer arguments are
// passed directly — no marshalling — which is the source of CRAC's low
// overhead relative to proxy approaches.
func (l *Library) LaunchKernel(h FatBinaryHandle, name string, cfg gpusim.LaunchConfig, stream Stream, args ...uint64) error {
	if err := l.touch("cudaLaunchKernel"); err != nil {
		return err
	}
	l.mu.Lock()
	fb, ok := l.fat[h]
	var k Kernel
	if ok {
		k = fb.kernels[name]
	}
	l.mu.Unlock()
	if !ok {
		return errf(ErrorInvalidResourceHandle, "cudaLaunchKernel", "unknown fat binary %#x", uint64(h))
	}
	if k == nil {
		return errf(ErrorInvalidValue, "cudaLaunchKernel", "unknown kernel %q", name)
	}
	gs, err := l.lookupStream("cudaLaunchKernel", stream)
	if err != nil {
		return err
	}
	ctx := &DevCtx{lib: l}
	argsCopy := append([]uint64(nil), args...)
	return gs.Launch(cfg, func(c gpusim.LaunchConfig) {
		k(ctx, c, argsCopy)
	})
}
