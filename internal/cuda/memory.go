package cuda

import (
	"repro/internal/addrspace"
	"repro/internal/uvm"
)

// MemcpyKind mirrors cudaMemcpyKind.
type MemcpyKind int

// Copy directions.
const (
	MemcpyHostToHost MemcpyKind = iota
	MemcpyHostToDevice
	MemcpyDeviceToHost
	MemcpyDeviceToDevice
	// MemcpyDefault infers the direction from the pointers, which is
	// only possible because UVA gives host and device a single address
	// space — the very feature that broke pre-CUDA-4.0 checkpointing.
	MemcpyDefault
)

// String names the kind.
func (k MemcpyKind) String() string {
	switch k {
	case MemcpyHostToHost:
		return "cudaMemcpyHostToHost"
	case MemcpyHostToDevice:
		return "cudaMemcpyHostToDevice"
	case MemcpyDeviceToHost:
		return "cudaMemcpyDeviceToHost"
	case MemcpyDeviceToDevice:
		return "cudaMemcpyDeviceToDevice"
	default:
		return "cudaMemcpyDefault"
	}
}

// PtrKind classifies an address within the library's memory model.
type PtrKind int

// Pointer classifications.
const (
	PtrUnknown PtrKind = iota
	PtrDevice          // cudaMalloc arena
	PtrPinned          // cudaMallocHost arena (lower half)
	PtrManaged         // cudaMallocManaged arena (UVM)
	PtrHost            // upper-half host memory (incl. cudaHostAlloc)
)

// Classify reports which memory class addr belongs to.
func (l *Library) Classify(addr uint64) PtrKind {
	switch {
	case l.devArena.contains(addr):
		return PtrDevice
	case l.mgdArena.contains(addr):
		return PtrManaged
	case l.pinArena.contains(addr):
		return PtrPinned
	default:
		if addr >= l.space.UpperWindow().Start && addr < l.space.UpperWindow().End {
			return PtrHost
		}
		return PtrUnknown
	}
}

// Malloc mirrors cudaMalloc: device memory from the device arena.
func (l *Library) Malloc(size uint64) (uint64, error) {
	if err := l.touch("cudaMalloc"); err != nil {
		return 0, err
	}
	driverAlloc()
	return l.devArena.alloc(size)
}

// Free mirrors cudaFree.
func (l *Library) Free(addr uint64) error {
	if err := l.touch("cudaFree"); err != nil {
		return err
	}
	driverFree()
	if l.mgdArena.contains(addr) {
		// cudaFree also frees managed allocations.
		if err := l.mgdArena.release(addr); err != nil {
			return err
		}
		return l.uvm.Unregister(addr)
	}
	return l.devArena.release(addr)
}

// MallocHost mirrors cudaMallocHost: pinned host memory, allocated by the
// library in its own (lower-half) arena. Its contents therefore are NOT
// part of the upper-half checkpoint image and must be drained/refilled
// explicitly (Section 3.2.4).
func (l *Library) MallocHost(size uint64) (uint64, error) {
	if err := l.touch("cudaMallocHost"); err != nil {
		return 0, err
	}
	driverAlloc()
	return l.pinArena.alloc(size)
}

// HostAlloc mirrors cudaHostAlloc: it pins and registers host memory that
// logically belongs to the application. CRAC attributes these buffers to
// the upper half, so their contents travel inside the DMTCP image and the
// restart replay only has to re-register them (Section 3.2.4).
func (l *Library) HostAlloc(size uint64) (uint64, error) {
	if err := l.touch("cudaHostAlloc"); err != nil {
		return 0, err
	}
	driverAlloc()
	addr, err := l.space.MMap(0, size, addrspace.ProtRW, 0, addrspace.HalfUpper, "cudaHostAlloc")
	if err != nil {
		return 0, errf(ErrorMemoryAllocation, "cudaHostAlloc", "%v", err)
	}
	l.mu.Lock()
	l.hostAllocs[addr] = size
	l.mu.Unlock()
	return addr, nil
}

// HostRegister re-registers an existing upper-half buffer as pinned, the
// replay-time counterpart of HostAlloc: after restart the buffer's bytes
// are already present in the restored upper half; only the library-side
// registration must be redone.
func (l *Library) HostRegister(addr, size uint64) error {
	if err := l.touch("cudaHostRegister"); err != nil {
		return err
	}
	// A coverage + protection check, not a content view: registration
	// must stay O(metadata) so replaying it during a lazy restart does
	// not fault the whole buffer in — but an unmapped or unreadable
	// range still fails, exactly as the old content-view probe did.
	if !l.space.Readable(addr, size) {
		return errf(ErrorInvalidHostPointer, "cudaHostRegister", "buffer %#x+%d not mapped or not readable", addr, size)
	}
	l.mu.Lock()
	l.hostAllocs[addr] = size
	l.mu.Unlock()
	return nil
}

// FreeHost mirrors cudaFreeHost, which frees both cudaMallocHost and
// cudaHostAlloc buffers.
func (l *Library) FreeHost(addr uint64) error {
	if err := l.touch("cudaFreeHost"); err != nil {
		return err
	}
	driverFree()
	l.mu.Lock()
	size, isHostAlloc := l.hostAllocs[addr]
	if isHostAlloc {
		delete(l.hostAllocs, addr)
	}
	l.mu.Unlock()
	if isHostAlloc {
		if err := l.space.MUnmap(addr, size); err != nil {
			return errf(ErrorInvalidHostPointer, "cudaFreeHost", "%v", err)
		}
		return nil
	}
	return l.pinArena.release(addr)
}

// MallocManaged mirrors cudaMallocManaged: UVM memory visible to host and
// device at one address, with on-demand page migration.
func (l *Library) MallocManaged(size uint64) (uint64, error) {
	if err := l.touch("cudaMallocManaged"); err != nil {
		return 0, err
	}
	driverAlloc()
	addr, err := l.mgdArena.alloc(size)
	if err != nil {
		return 0, err
	}
	l.uvm.Register(addr, size)
	l.uvmTouched.Store(true)
	return addr, nil
}

// MemPrefetch mirrors cudaMemPrefetchAsync (synchronously, for
// simplicity): migrates managed pages to the requested side.
func (l *Library) MemPrefetch(addr, size uint64, to uvm.Side) error {
	if err := l.touch("cudaMemPrefetchAsync"); err != nil {
		return err
	}
	_, err := l.uvm.Prefetch(to, addr, size)
	return err
}

// uvmAccountCopy records UVM traffic for managed endpoints of a copy.
func (l *Library) uvmAccountCopy(dst, src uint64, n uint64) {
	if l.mgdArena.contains(src) {
		_, _ = l.uvm.Access(uvm.Host, src, n)
	}
	if l.mgdArena.contains(dst) {
		_, _ = l.uvm.Access(uvm.Host, dst, n)
	}
}

// copyBytes moves n bytes inside the shared address space, using the
// single-region fast path when possible.
func (l *Library) copyBytes(op string, dst, src, n uint64) error {
	if n == 0 {
		return nil
	}
	sb, serr := l.space.ReadSlice(src, n)
	db, derr := l.space.Slice(dst, n)
	if serr == nil && derr == nil {
		copy(db, sb)
		return nil
	}
	// Slow path across region boundaries.
	buf := make([]byte, n)
	if err := l.space.ReadAt(src, buf); err != nil {
		return errf(ErrorInvalidValue, op, "read src %#x+%d: %v", src, n, err)
	}
	if err := l.space.WriteAt(dst, buf); err != nil {
		return errf(ErrorInvalidValue, op, "write dst %#x+%d: %v", dst, n, err)
	}
	return nil
}

// Memcpy mirrors cudaMemcpy: synchronous copy, direction validated (or
// inferred for MemcpyDefault). Thanks to the single address space the
// copy is a direct memory move with no marshalling — the property that
// lets CRAC pass pointers straight to the lower half (Section 1 item 1).
//
// As in CUDA, the synchronous copy is ordered after all prior work on
// the (legacy) default stream: kernels launched on stream 0 complete
// before the copy reads their output.
func (l *Library) Memcpy(dst, src, n uint64, kind MemcpyKind) error {
	if err := l.touch("cudaMemcpy"); err != nil {
		return err
	}
	if err := l.checkKind("cudaMemcpy", dst, src, kind); err != nil {
		return err
	}
	l.defaultStream.Synchronize()
	l.uvmAccountCopy(dst, src, n)
	return l.copyBytes("cudaMemcpy", dst, src, n)
}

// checkKind validates pointer classes against the declared direction.
func (l *Library) checkKind(op string, dst, src uint64, kind MemcpyKind) error {
	if kind == MemcpyDefault {
		return nil // UVA: direction inferred, any mapped pointers are fine
	}
	wantDev := func(addr uint64, want bool, side string) error {
		k := l.Classify(addr)
		isDev := k == PtrDevice
		if k == PtrManaged {
			return nil // managed is valid on either side of any direction
		}
		if isDev != want {
			return errf(ErrorInvalidValue, op, "%s pointer %#x is %v, inconsistent with %v", side, addr, k, kind)
		}
		return nil
	}
	switch kind {
	case MemcpyHostToHost:
		if err := wantDev(dst, false, "dst"); err != nil {
			return err
		}
		return wantDev(src, false, "src")
	case MemcpyHostToDevice:
		if err := wantDev(dst, true, "dst"); err != nil {
			return err
		}
		return wantDev(src, false, "src")
	case MemcpyDeviceToHost:
		if err := wantDev(dst, false, "dst"); err != nil {
			return err
		}
		return wantDev(src, true, "src")
	case MemcpyDeviceToDevice:
		if err := wantDev(dst, true, "dst"); err != nil {
			return err
		}
		return wantDev(src, true, "src")
	default:
		return errf(ErrorInvalidValue, op, "bad memcpy kind %d", int(kind))
	}
}

// MemcpyAsync mirrors cudaMemcpyAsync: the copy is enqueued on the
// stream and performed by the stream worker.
func (l *Library) MemcpyAsync(dst, src, n uint64, kind MemcpyKind, stream Stream) error {
	if err := l.touch("cudaMemcpyAsync"); err != nil {
		return err
	}
	if err := l.checkKind("cudaMemcpyAsync", dst, src, kind); err != nil {
		return err
	}
	s, err := l.lookupStream("cudaMemcpyAsync", stream)
	if err != nil {
		return err
	}
	return s.Copy(n, func() {
		l.uvmAccountCopy(dst, src, n)
		_ = l.copyBytes("cudaMemcpyAsync", dst, src, n)
	})
}

// Memset mirrors cudaMemset: like the synchronous copy it is ordered
// after prior default-stream work.
func (l *Library) Memset(addr uint64, value byte, n uint64) error {
	if err := l.touch("cudaMemset"); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	l.defaultStream.Synchronize()
	if l.mgdArena.contains(addr) {
		_, _ = l.uvm.Access(uvm.Host, addr, n)
	}
	b, err := l.space.Slice(addr, n)
	if err == nil {
		for i := range b {
			b[i] = value
		}
		return nil
	}
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = value
	}
	if werr := l.space.WriteAt(addr, buf); werr != nil {
		return errf(ErrorInvalidValue, "cudaMemset", "%v", werr)
	}
	return nil
}

// HostAccess gives the host (upper half) a direct view of memory,
// faulting managed pages to the host first. write declares the intent
// (both intents migrate, as hardware UVM does on any CPU touch).
func (l *Library) HostAccess(addr, n uint64, write bool) ([]byte, error) {
	if l.mgdArena.contains(addr) {
		if _, err := l.uvm.Access(uvm.Host, addr, n); err != nil {
			return nil, errf(ErrorInvalidValue, "hostAccess", "%v", err)
		}
	}
	slice := l.space.Slice
	if !write {
		// A declared read keeps the dirty tracking precise; callers
		// honoring write=false must not store through the view.
		slice = l.space.ReadSlice
	}
	b, err := slice(addr, n)
	if err != nil {
		return nil, errf(ErrorInvalidHostPointer, "hostAccess", "%#x+%d: %v", addr, n, err)
	}
	return b, nil
}

// MemGetInfo mirrors cudaMemGetInfo: free and total device memory. Free
// is the device budget minus live cudaMalloc bytes (the arena's unused
// mapped space is reusable, exactly as the real allocator's caches are).
func (l *Library) MemGetInfo() (free, total uint64, err error) {
	if err := l.touch("cudaMemGetInfo"); err != nil {
		return 0, 0, err
	}
	total = l.dev.Properties().GlobalMemBytes
	st := l.devArena.stats()
	if st.Live > total {
		return 0, total, nil
	}
	return total - st.Live, total, nil
}

// ActiveDeviceMallocs returns the live cudaMalloc allocations.
func (l *Library) ActiveDeviceMallocs() []Allocation { return l.devArena.liveAllocations() }

// ActivePinnedMallocs returns the live cudaMallocHost allocations.
func (l *Library) ActivePinnedMallocs() []Allocation { return l.pinArena.liveAllocations() }

// ActiveManagedMallocs returns the live cudaMallocManaged allocations.
func (l *Library) ActiveManagedMallocs() []Allocation { return l.mgdArena.liveAllocations() }

// ActiveHostAllocs returns the live cudaHostAlloc registrations.
func (l *Library) ActiveHostAllocs() []Allocation {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Allocation, 0, len(l.hostAllocs))
	for a, s := range l.hostAllocs {
		out = append(out, Allocation{Addr: a, Size: s})
	}
	return out
}

// ArenaFootprint reports mapped vs live bytes for each arena — the gap
// the active-malloc strategy exploits to keep checkpoint images small
// (Section 3.2.3).
func (l *Library) ArenaFootprint() (deviceMapped, deviceLive, pinnedMapped, pinnedLive, managedMapped, managedLive uint64) {
	d, p, m := l.devArena.stats(), l.pinArena.stats(), l.mgdArena.stats()
	return d.Mapped, d.Live, p.Mapped, p.Live, m.Mapped, m.Live
}
