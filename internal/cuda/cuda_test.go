package cuda

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/addrspace"
	"repro/internal/gpusim"
	"repro/internal/uvm"
)

func newLib(t *testing.T) *Library {
	t.Helper()
	l, err := NewLibrary(Config{})
	if err != nil {
		t.Fatalf("NewLibrary: %v", err)
	}
	t.Cleanup(l.Destroy)
	return l
}

func TestMallocFreeClassify(t *testing.T) {
	l := newLib(t)
	d, err := l.Malloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if l.Classify(d) != PtrDevice {
		t.Fatalf("classify(device) = %v", l.Classify(d))
	}
	p, err := l.MallocHost(1024)
	if err != nil {
		t.Fatal(err)
	}
	if l.Classify(p) != PtrPinned {
		t.Fatalf("classify(pinned) = %v", l.Classify(p))
	}
	m, err := l.MallocManaged(1024)
	if err != nil {
		t.Fatal(err)
	}
	if l.Classify(m) != PtrManaged {
		t.Fatalf("classify(managed) = %v", l.Classify(m))
	}
	h, err := l.HostAlloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if l.Classify(h) != PtrHost {
		t.Fatalf("classify(hostAlloc) = %v", l.Classify(h))
	}
	for _, addr := range []uint64{d, m} {
		if err := l.Free(addr); err != nil {
			t.Fatalf("Free(%#x): %v", addr, err)
		}
	}
	if err := l.FreeHost(p); err != nil {
		t.Fatal(err)
	}
	if err := l.FreeHost(h); err != nil {
		t.Fatal(err)
	}
	if err := l.Free(d); CodeOf(err) != ErrorInvalidDevicePointer {
		t.Fatalf("double free err = %v", err)
	}
}

func TestMallocAlignment(t *testing.T) {
	l := newLib(t)
	for _, size := range []uint64{1, 17, 255, 257, 4095} {
		a, err := l.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		if a%allocAlign != 0 {
			t.Fatalf("cudaMalloc(%d) returned unaligned %#x", size, a)
		}
	}
}

func TestMallocZeroSize(t *testing.T) {
	l := newLib(t)
	if _, err := l.Malloc(0); CodeOf(err) != ErrorInvalidValue {
		t.Fatalf("err = %v", err)
	}
}

func TestDeviceOOM(t *testing.T) {
	l, err := NewLibrary(Config{Prop: gpusim.Properties{
		Name: "tiny", ComputeMajor: 7, MaxConcurrentKernels: 4, GlobalMemBytes: 1 << 20, SMCount: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Destroy()
	if _, err := l.Malloc(8 << 20); CodeOf(err) != ErrorMemoryAllocation {
		t.Fatalf("err = %v, want cudaErrorMemoryAllocation", err)
	}
}

func TestArenaMultipleMmapsOnFirstMalloc(t *testing.T) {
	// Section 3.2.1: the first cudaMalloc maps a large arena with many
	// mmap calls; later ones usually map nothing.
	space := addrspace.New()
	l, err := NewLibrary(Config{Space: space, GrowthMmaps: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Destroy()
	mm0, _ := space.Stats()
	if _, err := l.Malloc(4096); err != nil {
		t.Fatal(err)
	}
	mm1, _ := space.Stats()
	if mm1-mm0 < 2 {
		t.Fatalf("first cudaMalloc issued %d mmaps, want several", mm1-mm0)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Malloc(4096); err != nil {
			t.Fatal(err)
		}
	}
	mm2, _ := space.Stats()
	if mm2 != mm1 {
		t.Fatalf("subsequent small cudaMallocs issued %d mmaps, want 0", mm2-mm1)
	}
}

func TestMemcpyDirections(t *testing.T) {
	l := newLib(t)
	d, _ := l.Malloc(64)
	h, _ := l.HostAlloc(64)
	src := bytes.Repeat([]byte{0x5A}, 64)
	if err := l.Space().WriteAt(h, src); err != nil {
		t.Fatal(err)
	}
	if err := l.Memcpy(d, h, 64, MemcpyHostToDevice); err != nil {
		t.Fatal(err)
	}
	h2, _ := l.HostAlloc(64)
	if err := l.Memcpy(h2, d, 64, MemcpyDeviceToHost); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	if err := l.Space().ReadAt(h2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("H2D/D2H round trip corrupted data")
	}
	// Wrong direction declarations are rejected.
	if err := l.Memcpy(d, h, 64, MemcpyDeviceToHost); CodeOf(err) != ErrorInvalidValue {
		t.Fatalf("wrong-kind memcpy err = %v", err)
	}
	if err := l.Memcpy(h2, h, 64, MemcpyHostToDevice); CodeOf(err) != ErrorInvalidValue {
		t.Fatalf("wrong-kind memcpy err = %v", err)
	}
	// MemcpyDefault infers (UVA).
	if err := l.Memcpy(d, h, 64, MemcpyDefault); err != nil {
		t.Fatalf("default-kind memcpy: %v", err)
	}
}

func TestMemsetAndHostAccess(t *testing.T) {
	l := newLib(t)
	d, _ := l.Malloc(256)
	if err := l.Memset(d, 0x7, 256); err != nil {
		t.Fatal(err)
	}
	b, err := l.HostAccess(d, 256, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range b {
		if v != 7 {
			t.Fatalf("memset byte = %d", v)
		}
	}
}

func TestUVMFaultsThroughMemcpyAndKernels(t *testing.T) {
	l := newLib(t)
	m, err := l.MallocManaged(2 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Host writes managed memory — pages host-resident, no device faults.
	if err := l.Memset(m, 1, 2*4096); err != nil {
		t.Fatal(err)
	}
	if st := l.UVM().Stats(); st.DeviceFaults != 0 {
		t.Fatalf("unexpected device faults: %+v", st)
	}
	// A kernel touches the managed range: device faults.
	fat, _ := l.RegisterFatBinary("m")
	if err := l.RegisterFunction(fat, "touch", func(ctx *DevCtx, _ gpusim.LaunchConfig, args []uint64) {
		b := ctx.Bytes(args[0], args[1])
		b[0]++
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.LaunchKernel(fat, "touch", gpusim.LaunchConfig{}, DefaultStream, m, 2*4096); err != nil {
		t.Fatal(err)
	}
	if err := l.DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
	st := l.UVM().Stats()
	if st.DeviceFaults != 2 {
		t.Fatalf("device faults = %d, want 2 (one per page)", st.DeviceFaults)
	}
	// Host read faults the page back.
	if _, err := l.HostAccess(m, 1, false); err != nil {
		t.Fatal(err)
	}
	if st := l.UVM().Stats(); st.HostFaults != 1 {
		t.Fatalf("host faults = %d, want 1", st.HostFaults)
	}
	// cudaFree of managed memory unregisters it.
	if err := l.Free(m); err != nil {
		t.Fatal(err)
	}
	if l.UVM().Contains(m) {
		t.Fatal("managed region still registered after free")
	}
}

func TestStreamLimitEnforced(t *testing.T) {
	prop := gpusim.TeslaV100()
	prop.MaxConcurrentKernels = 4
	l, err := NewLibrary(Config{Prop: prop})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Destroy()
	var streams []Stream
	for i := 0; i < 4; i++ {
		s, err := l.StreamCreate()
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		streams = append(streams, s)
	}
	// The paper: "The application fails if the stream count is increased
	// beyond the max limit."
	if _, err := l.StreamCreate(); CodeOf(err) != ErrorLaunchFailure {
		t.Fatalf("over-limit stream err = %v", err)
	}
	if err := l.StreamDestroy(streams[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := l.StreamCreate(); err != nil {
		t.Fatalf("stream after destroy: %v", err)
	}
}

func TestDefaultStreamUndestroyable(t *testing.T) {
	l := newLib(t)
	if err := l.StreamDestroy(DefaultStream); CodeOf(err) != ErrorInvalidResourceHandle {
		t.Fatalf("err = %v", err)
	}
}

func TestKernelLaunchUnknownNames(t *testing.T) {
	l := newLib(t)
	fat, _ := l.RegisterFatBinary("mod")
	if err := l.LaunchKernel(fat, "nope", gpusim.LaunchConfig{}, DefaultStream); CodeOf(err) != ErrorInvalidValue {
		t.Fatalf("unknown kernel err = %v", err)
	}
	if err := l.LaunchKernel(FatBinaryHandle(0xdead), "nope", gpusim.LaunchConfig{}, DefaultStream); CodeOf(err) != ErrorInvalidResourceHandle {
		t.Fatalf("unknown fat binary err = %v", err)
	}
	if err := l.RegisterFunction(fat, "nil", nil); CodeOf(err) != ErrorInvalidValue {
		t.Fatalf("nil kernel err = %v", err)
	}
}

func TestFatBinaryHandlesDifferAcrossInstances(t *testing.T) {
	// Section 3.2.5: a fresh library hands out different handles, which
	// is why CRAC patches fat-binary handles at restart.
	l1 := newLib(t)
	l2 := newLib(t)
	h1, _ := l1.RegisterFatBinary("app")
	h2, _ := l2.RegisterFatBinary("app")
	if h1 == h2 {
		t.Fatalf("fat-binary handles identical across instances: %#x", uint64(h1))
	}
}

func TestEventsThroughLibrary(t *testing.T) {
	l := newLib(t)
	s, _ := l.StreamCreate()
	e1, _ := l.EventCreate()
	e2, _ := l.EventCreate()
	if err := l.EventRecord(e1, s); err != nil {
		t.Fatal(err)
	}
	if err := l.EventRecord(e2, s); err != nil {
		t.Fatal(err)
	}
	if err := l.EventSynchronize(e2); err != nil {
		t.Fatal(err)
	}
	if _, err := l.EventElapsed(e1, e2); err != nil {
		t.Fatal(err)
	}
	if err := l.EventDestroy(e1); err != nil {
		t.Fatal(err)
	}
	if err := l.EventSynchronize(e1); CodeOf(err) != ErrorInvalidResourceHandle {
		t.Fatalf("destroyed event err = %v", err)
	}
}

func TestNaiveRestoreCorruptsFreshLibrary(t *testing.T) {
	l1 := newLib(t)
	if _, err := l1.MallocManaged(4096); err != nil {
		t.Fatal(err)
	}
	snap := l1.OpaqueStateSnapshot()

	l2 := newLib(t)
	if err := l2.RestoreOpaqueState(snap); err != nil {
		t.Fatal(err)
	}
	if !l2.Corrupt() {
		t.Fatal("fresh library accepted stale UVM state")
	}
	if _, err := l2.Malloc(64); CodeOf(err) != ErrorStateCorrupt {
		t.Fatalf("corrupted library err = %v", err)
	}
	// Restoring a snapshot onto the SAME instance is fine (resume case).
	if err := l1.RestoreOpaqueState(l1.OpaqueStateSnapshot()); err != nil {
		t.Fatal(err)
	}
	if l1.Corrupt() {
		t.Fatal("same-instance restore corrupted the library")
	}
}

func TestNaiveRestoreWithoutUVMIsHarmless(t *testing.T) {
	// Pre-UVM libraries could be naively saved/restored — that is why
	// CheCUDA worked before CUDA 4.0 (paper Section 2.2).
	l1 := newLib(t)
	if _, err := l1.Malloc(4096); err != nil {
		t.Fatal(err)
	}
	snap := l1.OpaqueStateSnapshot()
	l2 := newLib(t)
	if err := l2.RestoreOpaqueState(snap); err != nil {
		t.Fatal(err)
	}
	if l2.Corrupt() {
		t.Fatal("pre-UVM snapshot corrupted a fresh library")
	}
}

func TestActiveMallocsTracking(t *testing.T) {
	l := newLib(t)
	a, _ := l.Malloc(1000)
	b, _ := l.Malloc(2000)
	c, _ := l.Malloc(3000)
	_ = l.Free(b)
	act := l.ActiveDeviceMallocs()
	if len(act) != 2 || act[0].Addr != a || act[1].Addr != c {
		t.Fatalf("active = %+v", act)
	}
	devMapped, devLive, _, _, _, _ := l.ArenaFootprint()
	if devLive >= devMapped {
		t.Fatalf("live %d should be below mapped %d", devLive, devMapped)
	}
}

// TestQuickAllocatorDeterminism is DESIGN.md invariant 1: replaying any
// malloc/free sequence on a fresh library yields identical addresses
// (the foundation of Section 3.2.4's log-and-replay).
func TestQuickAllocatorDeterminism(t *testing.T) {
	run := func(ops []uint16) []uint64 {
		l, err := NewLibrary(Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Destroy()
		var addrs []uint64
		var live []uint64
		for _, op := range ops {
			if op%4 == 0 && len(live) > 0 {
				i := int(op/4) % len(live)
				if err := l.Free(live[i]); err == nil {
					live = append(live[:i], live[i+1:]...)
				}
			} else {
				size := uint64(op%2048) + 1
				a, err := l.Malloc(size)
				if err != nil {
					continue
				}
				addrs = append(addrs, a)
				live = append(live, a)
			}
		}
		return addrs
	}
	f := func(ops []uint16) bool {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		a := run(ops)
		b := run(ops)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickArenaCoalescing property: alloc-free-alloc of the same size
// reuses the same address (first fit over coalesced free blocks).
func TestQuickArenaCoalescing(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 32 {
			sizes = sizes[:32]
		}
		l, err := NewLibrary(Config{})
		if err != nil {
			return false
		}
		defer l.Destroy()
		var addrs []uint64
		for _, sz := range sizes {
			a, err := l.Malloc(uint64(sz) + 1)
			if err != nil {
				return false
			}
			addrs = append(addrs, a)
		}
		for _, a := range addrs {
			if err := l.Free(a); err != nil {
				return false
			}
		}
		// After freeing everything, the next allocation reuses the very
		// first address (all blocks coalesced back).
		a, err := l.Malloc(uint64(sizes[0]) + 1)
		return err == nil && a == addrs[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDestroyedLibraryRejectsCalls(t *testing.T) {
	l, err := NewLibrary(Config{})
	if err != nil {
		t.Fatal(err)
	}
	l.Destroy()
	if _, err := l.Malloc(64); CodeOf(err) != ErrorInitializationError {
		t.Fatalf("err = %v", err)
	}
	l.Destroy() // idempotent
}

func TestErrorFormatting(t *testing.T) {
	e := errf(ErrorMemoryAllocation, "cudaMalloc", "out of memory: %d", 42)
	if e.Error() == "" || CodeOf(e) != ErrorMemoryAllocation {
		t.Fatal("error formatting")
	}
	if !errors.Is(e, &Error{Code: ErrorMemoryAllocation}) {
		t.Fatal("errors.Is by code")
	}
	if CodeOf(nil) != Success {
		t.Fatal("CodeOf(nil)")
	}
	if Success.String() != "cudaSuccess" || Code(99).String() == "" {
		t.Fatal("code strings")
	}
}

func TestMemPrefetch(t *testing.T) {
	l := newLib(t)
	m, _ := l.MallocManaged(4 * 4096)
	if err := l.MemPrefetch(m, 4*4096, uvm.Device); err != nil {
		t.Fatal(err)
	}
	if res, _ := l.UVM().ResidencyOf(m); res != uvm.OnDevice {
		t.Fatalf("residency after prefetch = %v", res)
	}
}

func TestHostRegisterRequiresMappedBuffer(t *testing.T) {
	l := newLib(t)
	if err := l.HostRegister(0xdeadbeef000, 4096); CodeOf(err) != ErrorInvalidHostPointer {
		t.Fatalf("err = %v", err)
	}
}
