package cuda

import "fmt"

// Code is a CUDA error code, mirroring the cudaError_t values an
// application would observe from the real runtime.
type Code int

// Error codes used by the simulated runtime.
const (
	Success Code = iota
	ErrorMemoryAllocation
	ErrorInvalidValue
	ErrorInvalidDevicePointer
	ErrorInvalidHostPointer
	ErrorInvalidResourceHandle
	ErrorLaunchFailure
	ErrorNotReady
	ErrorInitializationError
	// ErrorStateCorrupt is the simulator's stand-in for the undefined
	// behaviour observed when a checkpointed CUDA library image is
	// restored over a fresh driver state (paper Section 3.1: "the
	// restored CUDA library was then inconsistent when called after
	// restart"). The real library has no such code — it simply
	// misbehaves — but the simulation must fail detectably.
	ErrorStateCorrupt
)

var codeNames = map[Code]string{
	Success:                    "cudaSuccess",
	ErrorMemoryAllocation:      "cudaErrorMemoryAllocation",
	ErrorInvalidValue:          "cudaErrorInvalidValue",
	ErrorInvalidDevicePointer:  "cudaErrorInvalidDevicePointer",
	ErrorInvalidHostPointer:    "cudaErrorInvalidHostPointer",
	ErrorInvalidResourceHandle: "cudaErrorInvalidResourceHandle",
	ErrorLaunchFailure:         "cudaErrorLaunchFailure",
	ErrorNotReady:              "cudaErrorNotReady",
	ErrorInitializationError:   "cudaErrorInitializationError",
	ErrorStateCorrupt:          "cudaErrorStateCorrupt(simulated)",
}

// String names the code like cudaGetErrorName.
func (c Code) String() string {
	if n, ok := codeNames[c]; ok {
		return n
	}
	return fmt.Sprintf("cudaError(%d)", int(c))
}

// Error is a CUDA runtime error carrying its code.
type Error struct {
	Code Code
	Op   string
	Msg  string
}

// Error renders the error.
func (e *Error) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("cuda: %s: %v", e.Op, e.Code)
	}
	return fmt.Sprintf("cuda: %s: %v: %s", e.Op, e.Code, e.Msg)
}

// Is allows errors.Is comparisons against another *Error by code.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Code == e.Code
}

func errf(code Code, op, format string, args ...any) *Error {
	return &Error{Code: code, Op: op, Msg: fmt.Sprintf(format, args...)}
}

// CodeOf extracts the CUDA error code from err (Success for nil,
// ErrorLaunchFailure for foreign errors).
func CodeOf(err error) Code {
	if err == nil {
		return Success
	}
	if ce, ok := err.(*Error); ok {
		return ce.Code
	}
	return ErrorLaunchFailure
}
