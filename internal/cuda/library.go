// Package cuda simulates the closed-source NVIDIA CUDA runtime library
// that lives in CRAC's lower half. It provides the cudaMalloc family over
// deterministic allocation arenas, synchronous and stream-ordered memory
// copies, streams and events over the simulated device, Unified Virtual
// Memory through the uvm pager, and fat-binary registration.
//
// The library deliberately reproduces the properties that shaped CRAC's
// design (paper Section 3):
//
//   - Allocation is deterministic, so replaying a logged malloc/free
//     sequence on a fresh library instance reproduces every address
//     (Section 3.2.4).
//   - The library holds opaque internal state (the "cookie") that is
//     invalidated by naively restoring a saved image of the library over
//     a fresh instance — the failure that killed pre-CUDA-4.0
//     checkpointing approaches once UVA/UVM arrived (Sections 2.2, 3.1).
//   - Fat-binary handles differ across library instances, so a restart
//     must re-register fat binaries and patch handles (Section 3.2.5).
package cuda

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"repro/internal/addrspace"
	"repro/internal/gpusim"
	"repro/internal/spin"
	"repro/internal/uvm"
)

// Modelled CUDA driver latencies for the allocation family. Real
// cudaMalloc/cudaFree enter the closed-source driver (and cudaFree
// synchronizes the device), costing tens of microseconds — far more than
// this simulator's arena bookkeeping. The modelled costs matter twice:
// they keep the runtime cost of allocation-heavy applications honest,
// and they are what makes restart replay of a long cudaMalloc/cudaFree
// history slower than the checkpoint itself (the paper's Figure 3
// outliers, Heartwall and Streamcluster).
const (
	mallocCostNs = 20000 // cudaMalloc / cudaMallocHost / cudaMallocManaged / cudaHostAlloc
	freeCostNs   = 10000 // cudaFree / cudaFreeHost
)

var (
	costOnce   sync.Once
	mallocSpin int
	freeSpin   int
)

// driverAlloc models the driver-call latency of an allocation API.
func driverAlloc() {
	costOnce.Do(func() {
		mallocSpin = spin.Iters(mallocCostNs)
		freeSpin = spin.Iters(freeCostNs)
	})
	spin.ForIters(mallocSpin)
}

// driverFree models the driver-call latency of a free API.
func driverFree() {
	costOnce.Do(func() {
		mallocSpin = spin.Iters(mallocCostNs)
		freeSpin = spin.Iters(freeCostNs)
	})
	spin.ForIters(freeSpin)
}

// libraryEpoch distinguishes library instances process-wide; it seeds the
// per-instance cookie and the fat-binary handle namespace.
var libraryEpoch atomic.Uint64

// Config configures a Library instance.
type Config struct {
	Prop  gpusim.Properties
	Space *addrspace.Space

	// Arena growth parameters; zero values select defaults sized for the
	// simulated workloads.
	DeviceArenaChunk  uint64
	PinnedArenaChunk  uint64
	ManagedArenaChunk uint64
	// GrowthMmaps is how many separate mmap calls one arena-growth
	// episode issues (Section 3.2.1: one cudaMalloc, many mmaps).
	GrowthMmaps int
}

func (c *Config) fillDefaults() {
	if c.Prop.Name == "" {
		c.Prop = gpusim.TeslaV100()
	}
	if c.DeviceArenaChunk == 0 {
		c.DeviceArenaChunk = 16 << 20
	}
	if c.PinnedArenaChunk == 0 {
		c.PinnedArenaChunk = 4 << 20
	}
	if c.ManagedArenaChunk == 0 {
		c.ManagedArenaChunk = 16 << 20
	}
	if c.GrowthMmaps == 0 {
		c.GrowthMmaps = 4
	}
}

// Stream is a CUDA stream handle. Stream 0 is the default stream.
type Stream uint64

// DefaultStream is the implicit stream of stream-order APIs.
const DefaultStream Stream = 0

// Event is a CUDA event handle.
type Event uint64

// FatBinaryHandle identifies a registered fat binary. Values are unique
// per library instance: a fresh lower half hands out different handles,
// which is why CRAC must patch them at restart (Section 3.2.5).
type FatBinaryHandle uint64

// Kernel is the device-side body of a registered __global__ function.
// args carry the raw 64-bit kernel arguments (pointers and scalars), as
// the real launch ABI does.
type Kernel func(ctx *DevCtx, cfg gpusim.LaunchConfig, args []uint64)

type fatBinary struct {
	module  string
	kernels map[string]Kernel
}

// Library is one instance of the simulated CUDA runtime.
type Library struct {
	space *addrspace.Space
	dev   *gpusim.Device
	uvm   *uvm.Manager

	devArena *arena // cudaMalloc
	pinArena *arena // cudaMallocHost
	mgdArena *arena // cudaMallocManaged

	mu            sync.Mutex
	streams       map[Stream]*gpusim.Stream
	nextStream    Stream
	events        map[Event]*gpusim.Event
	nextEvent     Event
	fat           map[FatBinaryHandle]*fatBinary
	nextFat       FatBinaryHandle
	hostAllocs    map[uint64]uint64 // cudaHostAlloc registrations: addr -> size
	defaultStream *gpusim.Stream

	cookie     uint64 // opaque internal state; differs per instance
	uvmTouched atomic.Bool
	corrupt    atomic.Bool // set after a naive state restore
	apiCalls   atomic.Uint64
	destroyed  atomic.Bool
}

// NewLibrary initializes a fresh CUDA library instance in the lower half
// of cfg.Space.
func NewLibrary(cfg Config) (*Library, error) {
	cfg.fillDefaults()
	if cfg.Space == nil {
		cfg.Space = addrspace.New()
	}
	epoch := libraryEpoch.Add(1)
	l := &Library{
		space:      cfg.Space,
		dev:        gpusim.New(cfg.Prop),
		uvm:        uvm.NewManager(),
		streams:    make(map[Stream]*gpusim.Stream),
		events:     make(map[Event]*gpusim.Event),
		fat:        make(map[FatBinaryHandle]*fatBinary),
		hostAllocs: make(map[uint64]uint64),
		cookie:     epoch*0x9e3779b97f4a7c15 + 0x85ebca6b,
		nextFat:    FatBinaryHandle(epoch << 20), // instance-distinct handle namespace
	}
	l.devArena = newArena(cfg.Space, addrspace.HalfLower, "cudaMalloc", "cuda/dev-arena",
		cfg.DeviceArenaChunk, cfg.GrowthMmaps, cfg.Prop.GlobalMemBytes)
	l.pinArena = newArena(cfg.Space, addrspace.HalfLower, "cudaMallocHost", "cuda/pinned-arena",
		cfg.PinnedArenaChunk, cfg.GrowthMmaps, 0)
	l.mgdArena = newArena(cfg.Space, addrspace.HalfLower, "cudaMallocManaged", "cuda/managed-arena",
		cfg.ManagedArenaChunk, cfg.GrowthMmaps, 0)
	ds, err := l.dev.NewStream()
	if err != nil {
		return nil, errf(ErrorInitializationError, "init", "default stream: %v", err)
	}
	l.defaultStream = ds
	return l, nil
}

// touch accounts one API call and enforces the corruption model: after a
// naive opaque-state restore, every call fails, reproducing the
// "inconsistent when called after restart" behaviour of Section 3.1.
func (l *Library) touch(op string) error {
	l.apiCalls.Add(1)
	if l.corrupt.Load() {
		return errf(ErrorStateCorrupt, op, "library state corrupted by naive image restore")
	}
	if l.destroyed.Load() {
		return errf(ErrorInitializationError, op, "library destroyed")
	}
	return nil
}

// Space returns the address space the library operates in.
func (l *Library) Space() *addrspace.Space { return l.space }

// Device returns the underlying simulated device.
func (l *Library) Device() *gpusim.Device { return l.dev }

// UVM returns the library's unified-memory manager.
func (l *Library) UVM() *uvm.Manager { return l.uvm }

// DeviceProperties mirrors cudaGetDeviceProperties.
func (l *Library) DeviceProperties() gpusim.Properties { return l.dev.Properties() }

// APICalls returns the cumulative CUDA API call count into this library.
func (l *Library) APICalls() uint64 { return l.apiCalls.Load() }

// DeviceSynchronize mirrors cudaDeviceSynchronize: it drains all streams.
func (l *Library) DeviceSynchronize() error {
	if err := l.touch("cudaDeviceSynchronize"); err != nil {
		return err
	}
	l.dev.Synchronize()
	return nil
}

// Destroy tears down the library: drains the device, unmaps the arenas,
// and marks the instance dead. Used when a lower half is discarded.
func (l *Library) Destroy() {
	if l.destroyed.Swap(true) {
		return
	}
	l.dev.Destroy()
	l.devArena.unmapAll()
	l.pinArena.unmapAll()
	l.mgdArena.unmapAll()
}

// RegisterFatBinary mirrors __cudaRegisterFatBinary: the upper half (or
// CRAC, at restart) registers an application module with the library.
func (l *Library) RegisterFatBinary(module string) (FatBinaryHandle, error) {
	if err := l.touch("__cudaRegisterFatBinary"); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextFat++
	h := l.nextFat
	l.fat[h] = &fatBinary{module: module, kernels: make(map[string]Kernel)}
	return h, nil
}

// RegisterFunction mirrors __cudaRegisterFunction for one __global__
// kernel in a registered fat binary.
func (l *Library) RegisterFunction(h FatBinaryHandle, name string, k Kernel) error {
	if err := l.touch("__cudaRegisterFunction"); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fb, ok := l.fat[h]
	if !ok {
		return errf(ErrorInvalidResourceHandle, "__cudaRegisterFunction", "unknown fat binary %#x", uint64(h))
	}
	if k == nil {
		return errf(ErrorInvalidValue, "__cudaRegisterFunction", "nil kernel %q", name)
	}
	fb.kernels[name] = k
	return nil
}

// UnregisterFatBinary mirrors __cudaUnregisterFatBinary (process exit
// cleanup).
func (l *Library) UnregisterFatBinary(h FatBinaryHandle) error {
	if err := l.touch("__cudaUnregisterFatBinary"); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.fat[h]; !ok {
		return errf(ErrorInvalidResourceHandle, "__cudaUnregisterFatBinary", "unknown fat binary %#x", uint64(h))
	}
	delete(l.fat, h)
	return nil
}

// FatBinaries returns the number of registered fat binaries.
func (l *Library) FatBinaries() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.fat)
}

// OpaqueStateSnapshot serializes the library's internal bookkeeping the
// way pre-CUDA-4.0 checkpointers saved the in-memory CUDA library. The
// blob is only restorable onto the *same* instance; restoring it onto a
// fresh instance corrupts that instance (see RestoreOpaqueState). Used by
// the ablation experiments.
func (l *Library) OpaqueStateSnapshot() []byte {
	b := make([]byte, 17)
	binary.LittleEndian.PutUint64(b[0:], l.cookie)
	binary.LittleEndian.PutUint64(b[8:], l.apiCalls.Load())
	if l.uvmTouched.Load() {
		b[16] = 1
	}
	return b
}

// RestoreOpaqueState installs a snapshot taken by OpaqueStateSnapshot.
// If the snapshot came from a different library instance — the only case
// possible after a real restart, since the original instance is gone —
// and that instance had touched UVM, the library is left permanently
// inconsistent: the restore itself "succeeds" (as the real memcpy-style
// restore would), but every subsequent call fails. This models the
// paper's observation that "the UVM resource had permanently modified
// the memory of the CUDA library's state" (Section 3.1, Log-and-replay).
func (l *Library) RestoreOpaqueState(b []byte) error {
	if len(b) != 17 {
		return errf(ErrorInvalidValue, "restoreOpaqueState", "bad snapshot length %d", len(b))
	}
	cookie := binary.LittleEndian.Uint64(b[0:])
	usedUVM := b[16] == 1
	if cookie != l.cookie && usedUVM {
		l.corrupt.Store(true)
	}
	return nil
}

// Corrupt reports whether the library is in the post-naive-restore
// inconsistent state.
func (l *Library) Corrupt() bool { return l.corrupt.Load() }
