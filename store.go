package crac

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cas"
	"repro/internal/dmtcp"
)

// Store is a destination for named checkpoint images. Implementations
// must make Put all-or-nothing: either the complete image becomes
// visible under name, or nothing does — a checkpoint aborted halfway
// (error or cancellation) must never leave a partial image behind.
//
// FileStore, DirStore, and MemStore are the built-in implementations;
// remote or tiered storage plugs in through the same four methods.
type Store interface {
	// Put stores the image produced by write under name, atomically.
	// write receives the destination; if it (or the commit) fails, the
	// store is left as if Put was never called.
	Put(ctx context.Context, name string, write func(io.Writer) error) error
	// Get opens the named image for reading. A missing name reports
	// ErrImageNotFound.
	Get(ctx context.Context, name string) (io.ReadCloser, error)
	// List returns the stored image names in lexical order.
	List(ctx context.Context) ([]string, error)
	// Delete removes the named image. Deleting a missing name reports
	// ErrImageNotFound.
	Delete(ctx context.Context, name string) error
}

// A CountingStore can report how many images it holds without
// materializing the sorted name slice List allocates. With thousands
// of pooled sessions checkpointing against one store, "how many images
// are there" is asked far more often than "what are they called" —
// quota accounting, retention checks, test assertions — and Len
// answers it with no per-call garbage. Optional: StoreLen falls back
// to List for stores that don't implement it.
type CountingStore interface {
	Store
	// Len returns the number of stored images.
	Len(ctx context.Context) (int, error)
}

// StoreLen returns the number of images in s: the allocation-free Len
// when the store is a CountingStore, a List fallback otherwise.
func StoreLen(ctx context.Context, s Store) (int, error) {
	if cs, ok := s.(CountingStore); ok {
		return cs.Len(ctx)
	}
	names, err := s.List(ctx)
	if err != nil {
		return 0, err
	}
	return len(names), nil
}

// validateImageName rejects names that could escape a directory store
// or collide with its temp files.
func validateImageName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || name == "." || name == ".." ||
		strings.HasPrefix(name, ".") {
		return fmt.Errorf("crac: invalid image name %q", name)
	}
	return nil
}

// A StoreOption configures a file-backed store (NewFileStore,
// NewDirStore).
type StoreOption func(*storeSettings)

type storeSettings struct{ noSync bool }

// WithNoSync drops the fsync barriers from the store's atomic write
// path (temp-file sync, directory sync around rename and retention).
// Put remains atomic against process crashes — the rename still commits
// all-or-nothing — but a machine crash shortly after Put returns may
// lose or truncate the image. For benchmarks and tests, where the
// images are throwaway and the fsyncs would dominate the measured
// write; durable by default everywhere else.
func WithNoSync() StoreOption {
	return func(s *storeSettings) { s.noSync = true }
}

func resolveStoreOpts(opts []StoreOption) storeSettings {
	var s storeSettings
	for _, o := range opts {
		o(&s)
	}
	return s
}

// syncDir flushes a directory's entries, making a just-committed
// rename (or a retention delete) durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// atomicWriteFile writes through a temp file in dir and renames it to
// dest on success; on any failure — error or panic out of write — the
// temp file is removed and dest is untouched. This is the atomic-write
// path shared by FileStore and DirStore (and by the deprecated
// CheckpointFile shim). Unless sync is false, the temp file is fsynced
// before the rename and the directory after it, so a Put that returned
// success survives a machine crash: rename-without-sync can leave dest
// pointing at a file whose blocks never reached disk.
func atomicWriteFile(dir, dest string, sync bool, write func(io.Writer) error) (err error) {
	tmp, err := os.CreateTemp(dir, ".crac-put-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(name)
	}
	defer func() {
		if r := recover(); r != nil {
			cleanup()
			panic(r)
		}
		if err != nil {
			cleanup()
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if sync {
		if err = tmp.Sync(); err != nil {
			return err
		}
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(name, dest); err != nil {
		return err
	}
	if sync {
		if err = syncDir(dir); err != nil {
			// The rename is committed; report the durability failure
			// without attempting to remove dest (removing a committed
			// image would be worse than an image that may not survive
			// a power cut).
			return fmt.Errorf("crac: syncing %s: %w", dir, err)
		}
	}
	return nil
}

// FileStore holds at most one image, at a fixed file path — the
// classic "checkpoint to this file" deployment. Whatever name is put
// or asked for, the single path backs it; List reports the file's base
// name while the image exists.
type FileStore struct {
	Path string
	// NoSync drops the fsync barriers from Put (see WithNoSync).
	NoSync bool
}

// NewFileStore returns a store backed by the single file at path.
func NewFileStore(path string, opts ...StoreOption) *FileStore {
	return &FileStore{Path: path, NoSync: resolveStoreOpts(opts).noSync}
}

// Put implements Store with a temp-file+rename atomic write.
func (s *FileStore) Put(ctx context.Context, name string, write func(io.Writer) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return atomicWriteFile(filepath.Dir(s.Path), s.Path, !s.NoSync, write)
}

// Get implements Store.
func (s *FileStore) Get(ctx context.Context, name string) (io.ReadCloser, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err := os.Open(s.Path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %q (%s)", ErrImageNotFound, name, s.Path)
		}
		return nil, err
	}
	return f, nil
}

// List implements Store.
func (s *FileStore) List(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if _, err := os.Stat(s.Path); err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	return []string{filepath.Base(s.Path)}, nil
}

// Len implements CountingStore: 1 if the slot holds an image, else 0.
func (s *FileStore) Len(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if _, err := os.Stat(s.Path); err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	return 1, nil
}

// Delete implements Store.
func (s *FileStore) Delete(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := os.Remove(s.Path); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %q (%s)", ErrImageNotFound, name, s.Path)
		}
		return err
	}
	return nil
}

// DirStore keeps one image file per name inside a directory — the
// one-file-per-generation layout. Writes are atomic (temp+rename), and
// an optional retention policy prunes the oldest images after each
// successful Put.
type DirStore struct {
	// Dir is the backing directory.
	Dir string
	// Keep bounds how many images survive a Put: after a successful
	// write, only the Keep most recent images (by modification time)
	// are retained — plus every ancestor an incremental (v3) delta
	// chain among them still needs: retention never orphans a chain by
	// deleting a base or an intermediate delta that a retained image
	// depends on. Keep <= 0 retains everything. Retention is
	// best-effort — it never fails an already-committed Put.
	Keep int
	// NoSync drops the fsync barriers from Put and retention (see
	// WithNoSync).
	NoSync bool

	// pruneMu serializes retention passes: two concurrent Puts must not
	// interleave their newest-first scans and deletions.
	pruneMu sync.Mutex
	// parentCache memoizes each image file's lineage header, keyed by
	// name and validated against (mtime, size): stored images are
	// immutable, so retention pays one header read per image instead of
	// re-parsing every retained file on every Put. Guarded by pruneMu.
	parentCache map[string]parentCacheEntry
}

// parentCacheEntry is one memoized lineage header.
type parentCacheEntry struct {
	parent string
	mtime  time.Time
	size   int64
}

const imageExt = ".img"

// NewDirStore creates dir if needed and returns a store over it that
// retains the keep most recent images (keep <= 0: all).
func NewDirStore(dir string, keep int, opts ...StoreOption) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{Dir: dir, Keep: keep, NoSync: resolveStoreOpts(opts).noSync}, nil
}

func (s *DirStore) path(name string) string {
	return filepath.Join(s.Dir, name+imageExt)
}

// Put implements Store: an atomic temp+rename write, then retention.
// Once the rename commits, Put reports success — retention is
// best-effort and a prune hiccup never turns a persisted checkpoint
// into a reported failure.
func (s *DirStore) Put(ctx context.Context, name string, write func(io.Writer) error) error {
	if err := validateImageName(name); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := atomicWriteFile(s.Dir, s.path(name), !s.NoSync, write); err != nil {
		return err
	}
	s.prune(name)
	return nil
}

// prune applies the retention policy, never touching the image that was
// just written, anything written after it (a concurrent Put's image
// belongs to that Put's retention window, not this one's), or any
// ancestor a retained delta chain still needs. Best-effort: images it
// cannot list, parse, or remove are simply retained until a later Put.
func (s *DirStore) prune(justWritten string) {
	if s.Keep <= 0 {
		return
	}
	s.pruneMu.Lock()
	defer s.pruneMu.Unlock()
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		return
	}
	type img struct {
		name string
		info fs.FileInfo
	}
	var imgs []img
	var justInfo fs.FileInfo
	infoByName := make(map[string]fs.FileInfo)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), imageExt) {
			continue
		}
		name := strings.TrimSuffix(e.Name(), imageExt)
		// Quarantined images are forensic artifacts: they neither count
		// toward Keep nor anchor a lineage closure, and prune never
		// removes them — Scrub moved them aside, a human removes them.
		if Quarantined(name) {
			continue
		}
		// Content-addressed chunk payloads (a CASStore layered over this
		// DirStore) are not images: they neither count toward Keep nor
		// get removed here — only the CAS layer's GC can prove a chunk
		// unreferenced.
		if cas.IsChunkName(name) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // raced with a concurrent delete
		}
		if name == justWritten {
			justInfo = info
		}
		infoByName[name] = info
		imgs = append(imgs, img{name: name, info: info})
	}
	// Newest first; equal timestamps break on name so pruning is
	// deterministic within one fast generation burst.
	sort.Slice(imgs, func(i, j int) bool {
		ti, tj := imgs[i].info.ModTime(), imgs[j].info.ModTime()
		if !ti.Equal(tj) {
			return ti.After(tj)
		}
		return imgs[i].name > imgs[j].name
	})
	retained := make(map[string]bool, s.Keep+1)
	retained[justWritten] = true
	for _, im := range imgs[:min(s.Keep, len(imgs))] {
		retained[im.name] = true
	}
	// Chain closure: every retained image's ancestry survives too, or a
	// surviving delta could never be materialized again.
	for name := range retained {
		cur := name
		for hops := 0; hops < maxLineageHops; hops++ {
			parent := s.imageParent(cur, infoByName[cur])
			if parent == "" || retained[parent] {
				break
			}
			retained[parent] = true
			cur = parent
		}
	}
	// Ordering: by the time retention runs, Put has already fsynced the
	// just-written image and its directory entry (unless NoSync), so
	// every image the survivors depend on is durable before anything is
	// removed — a crash mid-prune can strand extra files but never
	// deletes the only durable ancestor of a surviving delta. The
	// closing dir sync makes the removals themselves durable, so a
	// pruned parent cannot reappear after a crash and masquerade as a
	// live chain member.
	removed := false
	for _, im := range imgs {
		if retained[im.name] {
			continue
		}
		if justInfo != nil && im.info.ModTime().After(justInfo.ModTime()) {
			continue // a concurrent Put's fresher image: not ours to judge
		}
		if os.Remove(s.path(im.name)) == nil {
			removed = true
		}
	}
	if removed && !s.NoSync {
		syncDir(s.Dir)
	}
}

// maxLineageHops bounds the parent walk during retention, guarding
// against a corrupt cyclic lineage.
const maxLineageHops = 1024

// imageParent reads the lineage header of a stored image; "" when the
// image has no parent or cannot be read (best-effort, like prune).
// Called with pruneMu held; results are memoized against the file's
// (mtime, size) so each immutable image is parsed once.
func (s *DirStore) imageParent(name string, info fs.FileInfo) string {
	if info != nil {
		if e, ok := s.parentCache[name]; ok && e.mtime.Equal(info.ModTime()) && e.size == info.Size() {
			return e.parent
		}
	}
	f, err := os.Open(s.path(name))
	if err != nil {
		return ""
	}
	defer f.Close()
	// Lineage lives in the prologue of either encoding: a plain image's
	// v3 header, or — when a CASStore dedups over this directory — the
	// manifest's.
	br := bufio.NewReader(f)
	var parent string
	if head, _ := br.Peek(8); cas.IsManifestHeader(head) {
		m, err := cas.ReadManifestMeta(br)
		if err != nil {
			return ""
		}
		parent = m.Parent
	} else {
		meta, err := dmtcp.ReadImageMeta(br)
		if err != nil {
			return ""
		}
		parent = meta.Parent
	}
	if info != nil {
		if s.parentCache == nil {
			s.parentCache = make(map[string]parentCacheEntry)
		}
		s.parentCache[name] = parentCacheEntry{parent: parent, mtime: info.ModTime(), size: info.Size()}
	}
	return parent
}

// Get implements Store.
func (s *DirStore) Get(ctx context.Context, name string) (io.ReadCloser, error) {
	if err := validateImageName(name); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err := os.Open(s.path(name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %q in %s", ErrImageNotFound, name, s.Dir)
		}
		return nil, err
	}
	return f, nil
}

// List implements Store.
func (s *DirStore) List(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), imageExt) {
			continue
		}
		name := strings.TrimSuffix(e.Name(), imageExt)
		// Images Scrub quarantined are dead to the store: chain
		// resolution, retention, and re-scrubs must never consider them
		// live. They stay on disk (Get by exact name still works) for
		// forensics only.
		if Quarantined(name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Len implements CountingStore: the live (non-quarantined) image
// count, with no name slice built or sorted.
func (s *DirStore) Len(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), imageExt) {
			continue
		}
		if Quarantined(strings.TrimSuffix(e.Name(), imageExt)) {
			continue
		}
		n++
	}
	return n, nil
}

// Delete implements Store.
func (s *DirStore) Delete(ctx context.Context, name string) error {
	if err := validateImageName(name); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := os.Remove(s.path(name)); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %q in %s", ErrImageNotFound, name, s.Dir)
		}
		return err
	}
	return nil
}

// MemStore keeps images in memory — tests, ephemeral checkpoints, and
// the building block for remote-store write-through caches. Safe for
// concurrent use.
type MemStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string][]byte)} }

// Put implements Store: the image is staged in a buffer and published
// only if write succeeds, so a failed checkpoint leaves no trace.
func (s *MemStore) Put(ctx context.Context, name string, write func(io.Writer) error) error {
	if err := validateImageName(name); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return err
	}
	// A cancellation that raced the end of write must not publish: the
	// writer may have been abandoned mid-image by the same cancel.
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	if s.m == nil { // zero-value MemStore works, like the file stores
		s.m = make(map[string][]byte)
	}
	s.m[name] = buf.Bytes()
	s.mu.Unlock()
	return nil
}

// Get implements Store.
func (s *MemStore) Get(ctx context.Context, name string) (io.ReadCloser, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	b, ok := s.m[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrImageNotFound, name)
	}
	return io.NopCloser(bytes.NewReader(b)), nil
}

// List implements Store.
func (s *MemStore) List(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.m))
	for n := range s.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Len implements CountingStore with a map length, no allocation.
func (s *MemStore) Len(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m), nil
}

// Delete implements Store.
func (s *MemStore) Delete(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[name]; !ok {
		return fmt.Errorf("%w: %q", ErrImageNotFound, name)
	}
	delete(s.m, name)
	return nil
}

// ReaderAtCloser is a random-access image handle, as returned by
// RandomAccessStore.GetAt.
type ReaderAtCloser interface {
	io.ReaderAt
	io.Closer
}

// RandomAccessStore is an optional Store capability: GetAt opens the
// named image for random access, which is what lets a lazy restart
// (RestartAsync, WithLazyRestart) decode individual shards on demand
// instead of streaming the whole image. All built-in stores implement
// it; a store that cannot (a network stream, say) still works — the
// lazy path falls the image back into memory first, keeping the
// restore-side laziness but paying an eager download.
type RandomAccessStore interface {
	// GetAt opens the named image for random access, returning its
	// size. A missing name reports ErrImageNotFound.
	GetAt(ctx context.Context, name string) (ReaderAtCloser, int64, error)
}

// GetAt implements RandomAccessStore.
func (s *FileStore) GetAt(ctx context.Context, name string) (ReaderAtCloser, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	return openFileAt(s.Path, func() error {
		return fmt.Errorf("%w: %q (%s)", ErrImageNotFound, name, s.Path)
	})
}

// GetAt implements RandomAccessStore.
func (s *DirStore) GetAt(ctx context.Context, name string) (ReaderAtCloser, int64, error) {
	if err := validateImageName(name); err != nil {
		return nil, 0, err
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	return openFileAt(s.path(name), func() error {
		return fmt.Errorf("%w: %q in %s", ErrImageNotFound, name, s.Dir)
	})
}

func openFileAt(path string, missing func() error) (ReaderAtCloser, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, missing()
		}
		return nil, 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, fi.Size(), nil
}

// GetAt implements RandomAccessStore. Stored images are immutable
// byte slices, so the handle is a view, not a copy.
func (s *MemStore) GetAt(ctx context.Context, name string) (ReaderAtCloser, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	b, ok := s.m[name]
	s.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrImageNotFound, name)
	}
	return nopReaderAtCloser{bytes.NewReader(b)}, int64(len(b)), nil
}

type nopReaderAtCloser struct{ *bytes.Reader }

func (nopReaderAtCloser) Close() error { return nil }

// openImageAt opens the named image for random access, slurping it
// into memory when the store offers no RandomAccessStore capability.
func openImageAt(ctx context.Context, store Store, name string) (ReaderAtCloser, int64, error) {
	if ras, ok := store.(RandomAccessStore); ok {
		return ras.GetAt(ctx, name)
	}
	rc, err := store.Get(ctx, name)
	if err != nil {
		return nil, 0, err
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		return nil, 0, err
	}
	return nopReaderAtCloser{bytes.NewReader(b)}, int64(len(b)), nil
}

var (
	_ Store = (*FileStore)(nil)
	_ Store = (*DirStore)(nil)
	_ Store = (*MemStore)(nil)

	_ RandomAccessStore = (*FileStore)(nil)
	_ RandomAccessStore = (*DirStore)(nil)
	_ RandomAccessStore = (*MemStore)(nil)
)

// SingleImageStore is implemented by stores that back every name with
// the same single image slot (FileStore). Incremental checkpointing
// never writes deltas to such a store — each Put would overwrite the
// parent the delta depends on — and always falls back to full base
// images there.
type SingleImageStore interface {
	SingleImage() bool
}

// SingleImage marks FileStore as a one-slot store.
func (s *FileStore) SingleImage() bool { return true }

// singleImageStore reports whether store can hold only one image.
func singleImageStore(store Store) bool {
	si, ok := store.(SingleImageStore)
	return ok && si.SingleImage()
}
