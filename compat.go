package crac

import (
	"context"
	"os"
	"path/filepath"

	"repro/internal/gpusim"
)

// Config is the legacy flat configuration struct.
//
// Deprecated: use New with functional options (WithDevice, WithGzip,
// WithWorkers, ...). Config survives only as a shim: NewSession lowers
// it onto exactly the same resolved settings the options produce, so
// the two surfaces are behaviorally identical (a test asserts
// byte-identical checkpoint images).
type Config struct {
	// Prop selects the simulated device; zero value = Tesla V100.
	Prop gpusim.Properties
	// Switch selects the fs-register switch mechanism.
	Switch SwitcherKind
	// GzipImage compresses checkpoint images. The paper's experiments
	// disable compression; so does the default.
	GzipImage bool
	// GzipLevel selects the compression level when GzipImage is on
	// (gzip.BestSpeed..gzip.BestCompression); 0 = default level.
	GzipLevel int
	// CheckpointWorkers bounds the checkpoint/restart data-path
	// fan-out: <=0 uses all CPUs, 1 forces the serial reference path.
	CheckpointWorkers int
	// CheckpointShardSize overrides the v2 image shard granularity
	// (bytes); 0 = dmtcp.DefaultShardSize.
	CheckpointShardSize int
	// ASLR enables address-space randomization. CRAC requires it off
	// (the default); enabling it demonstrates the replay-mismatch
	// failure of Section 3.2.4.
	ASLR     bool
	ASLRSeed int64
	// Arena tuning, passed through to the CUDA library.
	DeviceArenaChunk  uint64
	PinnedArenaChunk  uint64
	ManagedArenaChunk uint64
	GrowthMmaps       int
}

// options lowers the legacy struct onto the functional-option surface.
func (c Config) options() []Option {
	opts := []Option{
		WithDevice(c.Prop),
		WithSwitcher(c.Switch),
		WithWorkers(c.CheckpointWorkers),
		WithShardSize(c.CheckpointShardSize),
		WithArenaChunks(c.DeviceArenaChunk, c.PinnedArenaChunk, c.ManagedArenaChunk),
		WithGrowthMmaps(c.GrowthMmaps),
	}
	if c.GzipImage {
		opts = append(opts, WithGzip(c.GzipLevel))
	}
	if c.ASLR {
		opts = append(opts, WithASLR(c.ASLRSeed))
	}
	return opts
}

// NewSession launches a CRAC session from a legacy Config.
//
// Deprecated: use New with functional options.
func NewSession(cfg Config) (*Session, error) {
	return New(cfg.options()...)
}

// CheckpointFile checkpoints to a file and returns its size. The write
// is atomic (temp file + rename): an error or cancellation leaves no
// partial image at path.
//
// Deprecated: use CheckpointTo with a FileStore or DirStore, which is
// the same atomic write path plus naming, listing, and retention.
func (s *Session) CheckpointFile(path string) (int64, Stats, error) {
	st, err := s.CheckpointTo(context.Background(), NewFileStore(path), filepath.Base(path))
	if err != nil {
		return 0, st, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return 0, st, err
	}
	return fi.Size(), st, nil
}

// RestartFile restarts from an image file.
//
// Deprecated: use RestartFrom with a FileStore or DirStore.
func (s *Session) RestartFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Restart(context.Background(), f)
}
