package crac

// Acceptance tests for live migration (ISSUE 7): pre-copy rounds over
// a running workload, a quiesced final cut, post-copy activation —
// byte-identical to a blocking checkpoint at the cut, aborting cleanly
// (source keeps running, no partial images, zero retained CoW pages)
// on failure in any phase.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/kernels"
)

// migrateWorkload builds the standard sparse workload plus a runtime-
// registered kernel, so migration must also carry the replay log's
// registrations across.
func migrateWorkload(t testing.TB, s *Session) *incrWorkload {
	t.Helper()
	rt := s.Runtime()
	fat, err := rt.RegisterFatBinary(kernels.Module)
	if err != nil {
		t.Fatal(err)
	}
	for name, k := range kernels.Table() {
		if err := rt.RegisterFunction(fat, name, k); err != nil {
			t.Fatal(err)
		}
	}
	return newIncrWorkload(t, rt)
}

// drainMigration waits out the post-copy tail and fails on tail errors.
func drainMigration(t testing.TB, m *Migration) {
	t.Helper()
	if err := m.Wait(); err != nil {
		t.Fatalf("post-copy tail: %v", err)
	}
}

// TestMigrateByteIdentity is the core invariant: the activated
// destination, once drained, is byte-identical to a blocking
// checkpoint of the quiesced source at the cut.
func TestMigrateByteIdentity(t *testing.T) {
	s, err := New(WithShardSize(64 << 10))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := migrateWorkload(t, s)
	for r := 0; r < 3; r++ {
		w.step(t, r)
	}

	src, dst := NewMemStore(), NewMemStore()
	m, err := Migrate(context.Background(), s, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Dest.Close()
	drainMigration(t, m)

	// The source is left quiesced at the cut; snapshot both sides
	// before resuming anything.
	srcBytes := sessionSnapshot(t, s)
	dstBytes := sessionSnapshot(t, m.Dest)
	if !bytes.Equal(srcBytes, dstBytes) {
		t.Fatalf("destination state differs from source cut: %d vs %d bytes",
			len(dstBytes), len(srcBytes))
	}
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}

	rep := m.Report
	if len(rep.Rounds) < 2 {
		t.Fatalf("expected at least base + final rounds, got %d", len(rep.Rounds))
	}
	if rep.Rounds[0].Delta {
		t.Fatal("round 0 must be a full base")
	}
	last := rep.Rounds[len(rep.Rounds)-1]
	if !last.Final || last.Name != rep.Tip {
		t.Fatalf("last round %+v is not the final cut (tip %q)", last, rep.Tip)
	}
	if !last.Delta {
		t.Fatal("final cut should be a delta riding the pre-copy chain")
	}
	if rep.Downtime <= 0 || rep.Duration < rep.Downtime {
		t.Fatalf("implausible timing: downtime %v, duration %v", rep.Downtime, rep.Duration)
	}

	// After the tail, the destination store is self-contained: the cut
	// image was replicated and dropped from the source side.
	if _, err := dst.Get(context.Background(), rep.Tip); err != nil {
		t.Fatalf("tip not replicated to destination store: %v", err)
	}
	if _, err := src.Get(context.Background(), rep.Tip); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("tip still (or again) in source store: %v", err)
	}

	// The destination must be able to restore from dst alone (a fresh
	// process: kernels come from the registry, as in any cross-process
	// restore).
	reg := NewKernelRegistry().AddTable(kernels.Module, kernels.Table())
	s2, err := RestoreFrom(context.Background(), dst, rep.Tip, WithShardSize(64<<10), WithKernels(reg))
	if err != nil {
		t.Fatalf("restoring migrated chain from destination store: %v", err)
	}
	defer s2.Close()
	if !bytes.Equal(sessionSnapshot(t, s2), srcBytes) {
		t.Fatal("chain restored from destination store differs from the cut")
	}
}

// TestMigrateTortureHTTP migrates a session whose mutators keep
// dirtying memory through every pre-copy round, over a real HTTP
// destination store. Run with -race: the snapshots, the mutators, the
// HTTP server, and the prefetcher all overlap.
func TestMigrateTortureHTTP(t *testing.T) {
	srv := httptest.NewServer(ServeStore(NewMemStore()))
	defer srv.Close()
	dst, err := NewHTTPStore(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	src := NewMemStore()

	s, err := New(WithShardSize(64 << 10))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := migrateWorkload(t, s)
	rt := s.Runtime()

	// Mutators: keep rewriting a sliding window of buffers until told
	// to stop (or until the final quiesce blocks them at the gate).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// 2i+g keeps the two goroutines on disjoint (odd/even)
				// buffers — they race the migration, not each other.
				if err := rt.Memset(w.host[(2*i+g)%len(w.host)]+512, byte(i), 32<<10); err != nil {
					return
				}
				if err := rt.Memset(w.dev[(2*i+g)%len(w.dev)], byte(i+g), 16<<10); err != nil {
					return
				}
			}
		}(g)
	}

	m, err := Migrate(context.Background(), s, src, dst,
		WithMigrateRounds(4), WithMigrateRoundDelay(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Dest.Close()
	drainMigration(t, m)

	// Source is quiesced at the cut: both snapshots observe exactly the
	// migrated state, however hard the mutators raced the rounds.
	srcBytes := sessionSnapshot(t, s)
	dstBytes := sessionSnapshot(t, m.Dest)
	if !bytes.Equal(srcBytes, dstBytes) {
		t.Fatalf("destination diverged from source cut under mutation: %d vs %d bytes",
			len(dstBytes), len(srcBytes))
	}

	// Wind the source down: resume (unblocking gate-parked mutators),
	// stop the loops, and check zero retained CoW pages on both sides.
	close(stop)
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if n := s.Space().RetainedPages(); n != 0 {
		t.Fatalf("source retains %d CoW pages after migration", n)
	}
	if n := m.Dest.Space().RetainedPages(); n != 0 {
		t.Fatalf("destination retains %d CoW pages", n)
	}

	// Per-round accounting: every pre-copy delta must carry payload
	// (the mutators guarantee dirt) and the report's byte totals must
	// line up with the rounds.
	rep := m.Report
	var pre, final uint64
	for _, r := range rep.Rounds {
		if r.ImageBytes == 0 {
			t.Fatalf("round %q moved no bytes", r.Name)
		}
		if r.Final {
			final += r.ImageBytes
		} else {
			pre += r.ImageBytes
		}
	}
	if pre != rep.PreCopyBytes || final != rep.FinalBytes {
		t.Fatalf("byte accounting mismatch: rounds %d/%d vs report %d/%d",
			pre, final, rep.PreCopyBytes, rep.FinalBytes)
	}
	// And the destination session must actually execute: launch the
	// runtime-registered kernel on the migrated side.
	if err := m.Dest.Runtime().DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
}

// holdFirstStore blocks its first Put until released (later Puts pass
// straight through), so a test can hold a migration mid-round
// deterministically.
type holdFirstStore struct {
	Store
	once    sync.Once
	entered chan struct{}
	release chan struct{}
}

func (g *holdFirstStore) Put(ctx context.Context, name string, write func(io.Writer) error) error {
	first := false
	g.once.Do(func() { first = true })
	if first {
		close(g.entered)
		<-g.release
	}
	return g.Store.Put(ctx, name, write)
}

// TestMigrateGuards: while a migration is in flight, checkpoints,
// restarts, and second migrations are refused with
// ErrMigrationInFlight — and the migration itself completes untouched.
func TestMigrateGuards(t *testing.T) {
	s, err := New(WithShardSize(64 << 10))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	migrateWorkload(t, s)

	src, inner := NewMemStore(), NewMemStore()
	ctx := context.Background()
	if _, err := s.CheckpointTo(ctx, src, "pre"); err != nil {
		t.Fatal(err)
	}

	g := &holdFirstStore{Store: inner, entered: make(chan struct{}), release: make(chan struct{})}
	type result struct {
		m   *Migration
		err error
	}
	done := make(chan result, 1)
	go func() {
		m, err := Migrate(ctx, s, src, g)
		done <- result{m, err}
	}()
	<-g.entered

	if _, err := s.CheckpointTo(ctx, src, "during"); !errors.Is(err, ErrMigrationInFlight) {
		t.Errorf("CheckpointTo during migration: %v, want ErrMigrationInFlight", err)
	}
	if err := s.RestartFrom(ctx, src, "pre"); !errors.Is(err, ErrMigrationInFlight) {
		t.Errorf("RestartFrom during migration: %v, want ErrMigrationInFlight", err)
	}
	if _, err := Migrate(ctx, s, src, NewMemStore()); !errors.Is(err, ErrMigrationInFlight) {
		t.Errorf("second Migrate: %v, want ErrMigrationInFlight", err)
	}
	close(g.release)

	res := <-done
	if res.err != nil {
		t.Fatalf("migration failed: %v", res.err)
	}
	defer res.m.Dest.Close()
	drainMigration(t, res.m)
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	// The guard lifts with the migration: a normal checkpoint works.
	if _, err := s.CheckpointTo(ctx, src, "after"); err != nil {
		t.Fatalf("checkpoint after migration: %v", err)
	}
}

// cancelOnPut cancels a context when a given image name is written —
// deterministic mid-phase cancellation.
type cancelOnPut struct {
	Store
	name   string
	cancel context.CancelFunc
}

func (c *cancelOnPut) Put(ctx context.Context, name string, write func(io.Writer) error) error {
	if name == c.name {
		c.cancel()
		return ctx.Err()
	}
	return c.Store.Put(ctx, name, write)
}

// checkAbortClean asserts the abort contract: source running (not
// quiesced, usable), no migration images in either store, zero
// retained CoW pages.
func checkAbortClean(t *testing.T, s *Session, src, dst Store) {
	t.Helper()
	ctx := context.Background()
	if err := s.Resume(); !errors.Is(err, ErrNotQuiesced) {
		t.Errorf("source left quiesced after abort (Resume: %v)", err)
	}
	if err := s.Runtime().DeviceSynchronize(); err != nil {
		t.Errorf("source unusable after abort: %v", err)
	}
	if n := s.Space().RetainedPages(); n != 0 {
		t.Errorf("%d CoW pages retained after abort", n)
	}
	for storeName, st := range map[string]Store{"src": src, "dst": dst} {
		names, err := st.List(ctx)
		if err != nil {
			t.Fatalf("listing %s: %v", storeName, err)
		}
		for _, n := range names {
			if n == "pre" {
				continue // the test's own pre-existing image
			}
			t.Errorf("%s still holds migration image %q after abort", storeName, n)
		}
	}
	// The session must checkpoint and restore normally afterwards.
	if _, err := s.CheckpointTo(ctx, src, "pre"); err != nil {
		t.Errorf("checkpoint after abort: %v", err)
	}
}

// TestMigrateAbort covers failure in every phase: destination Put
// failure on the base and on a delta round, context cancellation
// mid-pre-copy, source-side failure at the final cut, and destination
// failure at activation.
func TestMigrateAbort(t *testing.T) {
	newSess := func(t *testing.T) *Session {
		s, err := New(WithShardSize(64 << 10))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		w := migrateWorkload(t, s)
		for r := 0; r < 2; r++ {
			w.step(t, r)
		}
		return s
	}

	t.Run("dst-put-base", func(t *testing.T) {
		s := newSess(t)
		src := NewMemStore()
		dst := NewFaultStore(NewMemStore(), faults.New(faults.Config{Seed: 1}))
		dst.Injector().FailNext(faults.OpPut, faults.KindPermanent)
		if _, err := Migrate(context.Background(), s, src, dst); err == nil {
			t.Fatal("migration succeeded through a failing destination")
		}
		checkAbortClean(t, s, src, dst)
	})

	t.Run("dst-put-delta-round", func(t *testing.T) {
		s := newSess(t)
		src := NewMemStore()
		dst := NewFaultStore(NewMemStore(), faults.New(faults.Config{Seed: 2}))
		// Base commits, the first delta round dies.
		dst.Injector().FailNext(faults.OpPut, faults.KindNone)
		dst.Injector().FailNext(faults.OpPut, faults.KindPermanent)
		if _, err := Migrate(context.Background(), s, src, dst); err == nil {
			t.Fatal("migration succeeded through a failing delta round")
		}
		checkAbortClean(t, s, src, dst)
	})

	t.Run("cancel-mid-precopy", func(t *testing.T) {
		s := newSess(t)
		src := NewMemStore()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		dst := &cancelOnPut{Store: NewMemStore(), name: "migrate-1", cancel: cancel}
		_, err := Migrate(ctx, s, src, dst)
		if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled migration returned %v, want ErrCancelled", err)
		}
		checkAbortClean(t, s, src, dst)
	})

	t.Run("src-final-cut", func(t *testing.T) {
		s := newSess(t)
		src := NewFaultStore(NewMemStore(), faults.New(faults.Config{Seed: 3}))
		// Only the final cut writes to src: fail it.
		src.Injector().FailNext(faults.OpPut, faults.KindPermanent)
		dst := NewMemStore()
		if _, err := Migrate(context.Background(), s, src, dst); err == nil {
			t.Fatal("migration succeeded through a failing final cut")
		}
		checkAbortClean(t, s, src, dst)
	})

	t.Run("dst-activation", func(t *testing.T) {
		s := newSess(t)
		src := NewMemStore()
		dst := NewFaultStore(NewMemStore(), faults.New(faults.Config{Seed: 4}))
		// Pre-copy commits fine; the destination's index reads at
		// activation fail hard (queue enough for every chain member).
		for i := 0; i < 8; i++ {
			dst.Injector().FailNext(faults.OpGetAt, faults.KindPermanent)
			dst.Injector().FailNext(faults.OpGet, faults.KindPermanent)
		}
		if _, err := Migrate(context.Background(), s, src, dst); err == nil {
			t.Fatal("migration succeeded through a failing activation")
		}
		checkAbortClean(t, s, src, dst)
	})
}

// TestMigrateRetryComposition: transient destination faults are
// absorbed by WithCheckpointRetry — the migration's store writes ride
// the session's retry policy.
func TestMigrateRetryComposition(t *testing.T) {
	s, err := New(WithShardSize(64<<10),
		WithCheckpointRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	migrateWorkload(t, s)

	src := NewMemStore()
	dst := NewFaultStore(NewMemStore(), faults.New(faults.Config{Seed: 5}))
	dst.Injector().FailNext(faults.OpPut, faults.KindTransient)
	dst.Injector().FailNext(faults.OpPut, faults.KindTransient)
	m, err := Migrate(context.Background(), s, src, dst)
	if err != nil {
		t.Fatalf("transient faults should have been retried: %v", err)
	}
	defer m.Dest.Close()
	drainMigration(t, m)
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
}

// TestMigrateDowntimeBound is the acceptance bound: migration's
// visible downtime must be at least 5× smaller than stop-copy-restart
// (quiesce, full checkpoint to the destination store, eager restore
// there). Min-of-3 on both sides so scheduler noise cannot flip the
// comparison; the real gap is an order of magnitude or more.
func TestMigrateDowntimeBound(t *testing.T) {
	if testing.Short() {
		t.Skip("timing bound")
	}
	ctx := context.Background()
	const iters = 3

	baseline := time.Duration(1 << 62)
	for i := 0; i < iters; i++ {
		s, err := New(WithShardSize(64 << 10))
		if err != nil {
			t.Fatal(err)
		}
		w := migrateWorkload(t, s)
		for r := 0; r < 3; r++ {
			w.step(t, r)
		}
		dst := NewMemStore()
		t0 := time.Now()
		if err := s.Quiesce(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.CheckpointTo(ctx, dst, "stopcopy"); err != nil {
			t.Fatal(err)
		}
		reg := NewKernelRegistry().AddTable(kernels.Module, kernels.Table())
		s2, err := RestoreFrom(ctx, dst, "stopcopy", WithShardSize(64<<10), WithKernels(reg))
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d < baseline {
			baseline = d
		}
		s2.Close()
		s.Resume()
		s.Close()
	}

	downtime := time.Duration(1 << 62)
	for i := 0; i < iters; i++ {
		s, err := New(WithShardSize(64 << 10))
		if err != nil {
			t.Fatal(err)
		}
		w := migrateWorkload(t, s)
		for r := 0; r < 3; r++ {
			w.step(t, r)
		}
		m, err := Migrate(ctx, s, NewMemStore(), NewMemStore())
		if err != nil {
			t.Fatal(err)
		}
		if m.Report.Downtime < downtime {
			downtime = m.Report.Downtime
		}
		drainMigration(t, m)
		m.Dest.Close()
		s.Resume()
		s.Close()
	}

	t.Logf("stop-copy-restart %v vs migrate downtime %v (%.1fx)",
		baseline, downtime, float64(baseline)/float64(downtime))
	if downtime*5 > baseline {
		t.Fatalf("migration downtime %v is not ≥5× below stop-copy-restart %v", downtime, baseline)
	}
}

// TestFallbackStore pins the union view's semantics: primary wins,
// fallback fills the gaps, writes and deletes never touch fallback.
func TestFallbackStore(t *testing.T) {
	ctx := context.Background()
	primary, fallback := NewMemStore(), NewMemStore()
	put := func(s Store, name, content string) {
		t.Helper()
		if err := s.Put(ctx, name, func(w io.Writer) error {
			_, err := w.Write([]byte(content))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	put(primary, "both", "primary")
	put(fallback, "both", "fallback")
	put(fallback, "only-fallback", "tail")

	f := &fallbackStore{primary: primary, fallback: fallback}
	read := func(name string) string {
		t.Helper()
		rc, err := f.Get(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		var buf bytes.Buffer
		buf.ReadFrom(rc)
		return buf.String()
	}
	if got := read("both"); got != "primary" {
		t.Fatalf("Get(both) = %q, want primary side", got)
	}
	if got := read("only-fallback"); got != "tail" {
		t.Fatalf("Get(only-fallback) = %q", got)
	}
	if _, err := f.Get(ctx, "neither"); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("Get(neither) = %v", err)
	}
	src, size, err := f.GetAt(ctx, "only-fallback")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	b := make([]byte, size)
	if _, err := src.ReadAt(b, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(b) != "tail" {
		t.Fatalf("GetAt fallback read %q", b)
	}
	names, err := f.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"both", "only-fallback"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("List = %v, want %v", names, want)
	}
}

// TestMigrateDedupSkipsPresentChunks is the transferred-bytes
// acceptance bound for content-addressed migration: migrating a second,
// nearly identical session to a destination that already holds the
// first one's chunks must move a small fraction of the bytes — the
// pre-copy uploads batch-probe the destination over the wire and skip
// every chunk it already has.
func TestMigrateDedupSkipsPresentChunks(t *testing.T) {
	ctx := context.Background()

	// Real HTTP destination, instrumented: count every byte PUT into
	// the chunk namespace.
	var chunkPutBytes atomic.Int64
	backend := ServeStore(NewMemStore())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut && strings.Contains(r.URL.Path, "/cas-") {
			r.Body = countingBody{rc: r.Body, n: &chunkPutBytes}
		}
		backend.ServeHTTP(w, r)
	}))
	defer srv.Close()

	migrateOne := func(prefix string) *Migration {
		s, err := New(WithShardSize(64 << 10))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		w := migrateWorkload(t, s)
		for r := 0; r < 3; r++ {
			w.step(t, r)
		}
		// A fresh client per migration: the CAS present-cache starts
		// cold, so skipping re-uploads requires the batch-exists probe
		// to actually cross the wire.
		hs, err := NewHTTPStore(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		dst := NewCASStore(hs)
		m, err := Migrate(ctx, s, NewMemStore(), dst, WithMigratePrefix(prefix))
		if err != nil {
			t.Fatalf("Migrate(%s): %v", prefix, err)
		}
		t.Cleanup(func() { m.Dest.Close() })
		drainMigration(t, m)
		return m
	}

	migrateOne("m1")
	firstBytes := chunkPutBytes.Load()
	if firstBytes == 0 {
		t.Fatal("first migration uploaded no chunk bytes — counting middleware is broken")
	}

	chunkPutBytes.Store(0)
	m2 := migrateOne("m2")
	secondBytes := chunkPutBytes.Load()
	if secondBytes*5 > firstBytes {
		t.Fatalf("second migration uploaded %d chunk bytes vs %d for the first — dedup skipped less than 5× (%.2fx)",
			secondBytes, firstBytes, float64(firstBytes)/float64(max(secondBytes, 1)))
	}

	// The deduplicated destination still activated a real session:
	// its final cut verifies and its state is live.
	if _, err := m2.Dest.Runtime().Malloc(4096); err != nil {
		t.Fatal(err)
	}
}

// countingBody counts the bytes read from a request body.
type countingBody struct {
	rc io.ReadCloser
	n  *atomic.Int64
}

func (c countingBody) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	c.n.Add(int64(n))
	return n, err
}

func (c countingBody) Close() error { return c.rc.Close() }
