package crac

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cracrt"
	"repro/internal/dmtcp"
)

// Sentinel errors of the public checkpoint API. All of them are
// classified with errors.Is; errors returned by Session and Store
// operations wrap one of these (possibly alongside an underlying cause,
// which errors.As / errors.Is also reach).
var (
	// ErrBadImage reports a malformed checkpoint image: truncated,
	// corrupt, or not a CRAC image at all.
	ErrBadImage = dmtcp.ErrBadImage

	// ErrUnsupportedVersion reports a checkpoint image whose format
	// version this build does not speak (the CRACIMG magic matched but
	// the version digit is unknown).
	ErrUnsupportedVersion = dmtcp.ErrUnsupportedVersion

	// ErrCorruptImage reports a checkpoint image that was structurally
	// valid when written but fails its integrity checks now — a trailer
	// checksum or per-shard content hash mismatch, a truncated trailer,
	// bytes past the image's end. Distinct from ErrBadImage ("not a
	// valid image stream"): a corrupt image usually has intact siblings
	// (an older generation, a chain ancestor) worth falling back to —
	// see Scrub, RepairChain, and Supervisor.
	ErrCorruptImage = dmtcp.ErrCorruptImage

	// ErrTransient marks a store failure worth retrying: the operation
	// may succeed if reissued (a flaky disk, a dropped connection, an
	// overloaded remote). Store implementations wrap it (or expose a
	// `Transient() bool` method on their errors) to opt an error into
	// the WithRetry backoff loop; see Transient.
	ErrTransient = errors.New("crac: transient store error")

	// ErrReplayMismatch reports that replaying the CUDA call log on a
	// fresh lower half did not reproduce the original addresses — the
	// determinism violation of paper Section 3.2.4 (ASLR left on, or a
	// different platform on restart).
	ErrReplayMismatch = cracrt.ErrReplayMismatch

	// ErrCancelled reports a checkpoint or restore aborted by its
	// context. It wraps the context's own error, so both
	// errors.Is(err, ErrCancelled) and errors.Is(err, context.Canceled)
	// (or context.DeadlineExceeded) hold.
	ErrCancelled = errors.New("crac: operation cancelled")

	// ErrSessionClosed reports an operation on a Session after Close, or
	// after a failed restart tore the lower half down.
	ErrSessionClosed = errors.New("crac: session closed")

	// ErrImageNotFound reports a Store lookup for a name with no image.
	ErrImageNotFound = errors.New("crac: image not found")

	// ErrDeltaChain reports an operation that needs a delta image's
	// parent chain: restoring a bare delta image (use RestartFrom /
	// RestoreFrom / OpenImageFrom against the Store holding the chain),
	// or a chain whose parent image is missing or cyclic.
	ErrDeltaChain = dmtcp.ErrDeltaChain

	// ErrCheckpointInFlight reports a checkpoint or restart issued while
	// a concurrent checkpoint (CheckpointAsync) is still writing its
	// image. Wait on the Pending, then retry.
	ErrCheckpointInFlight = errors.New("crac: a concurrent checkpoint is in flight")

	// ErrMigrationInFlight reports a checkpoint, restart, or second
	// migration issued on a session that Migrate is currently moving:
	// the migration owns the session's checkpoint machinery (its delta
	// lineage and the plugin's dirty baseline) until it completes or
	// aborts. Wait for Migrate to return, then retry.
	ErrMigrationInFlight = errors.New("crac: a live migration is in flight")

	// ErrNotQuiesced reports a Session.Resume with no matching Quiesce:
	// the pair must balance.
	ErrNotQuiesced = errors.New("crac: resume without matching quiesce")

	// ErrQuiesced reports an operation that cannot run while the session
	// is quiesced: a restart tears down the gated runtime and would
	// deadlock against the held launch gate (and the rebuilt address
	// space would never match the pending Resume). Resume first.
	ErrQuiesced = errors.New("crac: session is quiesced")

	// ErrQuotaExceeded reports a Pool operation rejected by a tenant's
	// quota: opening a session past MaxSessions, checkpointing past
	// MaxInFlight, or a checkpoint whose image would push the tenant
	// past its stored-bytes budget (the partial write is aborted and,
	// through a Store, leaves nothing behind). The tenant is over its
	// own limits — retrying without freeing something will fail again.
	ErrQuotaExceeded = errors.New("crac: tenant quota exceeded")

	// ErrPoolSaturated reports a Pool operation rejected by a
	// pool-wide limit rather than the caller's own quota: opening a
	// session past the pool's MaxSessions, or a checkpoint whose
	// stagger-scheduler wait exceeded the admission timeout. Unlike
	// ErrQuotaExceeded this is a load signal — backing off and
	// retrying is reasonable.
	ErrPoolSaturated = errors.New("crac: pool saturated")

	// ErrPoolClosed reports an operation on a Pool after Close.
	ErrPoolClosed = errors.New("crac: pool closed")
)

// Transient reports whether err is worth retrying: it wraps
// ErrTransient, or any error in its chain exposes a `Transient() bool`
// method returning true (the de-facto convention of net.Error and
// custom store errors). Context cancellation and deadline errors are
// never transient — the caller asked to stop, retrying would defy it.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	var te interface{ Transient() bool }
	return errors.As(err, &te) && te.Transient()
}

// wrapCancelled folds a context cancellation surfacing from the engine
// or the fan-out helpers into the public ErrCancelled sentinel while
// keeping the original context error reachable through errors.Is.
func wrapCancelled(err error) error {
	if err == nil || errors.Is(err, ErrCancelled) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrCancelled, err)
	}
	return err
}
