package crac

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/addrspace"
	"repro/internal/cracplugin"
	"repro/internal/cracrt"
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/dmtcp"
	"repro/internal/fsgs"
	"repro/internal/loader"
	"repro/internal/replaylog"
)

// Stats describes one checkpoint operation (regions, payload bytes, and
// the wall-time split between image writing and plugin hooks).
type Stats = dmtcp.Stats

// SwitcherKind selects the fs-register switching mechanism used by the
// upper→lower trampoline (paper Section 4.4.5).
type SwitcherKind int

// Switcher kinds.
const (
	// SwitchSyscall switches fs through a kernel call, as on an
	// unpatched Linux kernel (the default, matching the paper's main
	// experiments).
	SwitchSyscall SwitcherKind = iota
	// SwitchFSGSBase switches fs with the WRFSBASE instruction, as on a
	// kernel with the FSGSBASE patch.
	SwitchFSGSBase
	// SwitchNone performs no switching (used for calibration only; a
	// real split process always switches).
	SwitchNone
)

func (k SwitcherKind) newSwitcher() fsgs.Switcher {
	switch k {
	case SwitchFSGSBase:
		return fsgs.NewFSGSBase()
	case SwitchNone:
		return fsgs.None{}
	default:
		return fsgs.NewSyscall()
	}
}

func (s settings) libConfig(space *addrspace.Space) cuda.Config {
	return cuda.Config{
		Prop:              s.prop,
		Space:             space,
		DeviceArenaChunk:  s.deviceArenaChunk,
		PinnedArenaChunk:  s.pinnedArenaChunk,
		ManagedArenaChunk: s.managedArenaChunk,
		GrowthMmaps:       s.growthMmaps,
	}
}

// Session is one CUDA application execution under CRAC: a single
// simulated process whose address space holds the checkpointed upper half
// (application) and a disposable lower half (helper program + active
// CUDA library), per Figure 1 of the paper.
type Session struct {
	cfg settings

	mu         sync.Mutex
	space      *addrspace.Space
	helper     *loader.Program
	lib        *cuda.Library
	rt         *cracrt.Runtime
	engine     *dmtcp.Engine
	plugin     *cracplugin.Plugin
	generation int // incremented on every restart

	// incr is the incremental-checkpoint chain state: the lineage of the
	// last committed CheckpointTo (nil: the next checkpoint is a base).
	// Guarded by mu; committed only after the Store.Put succeeded.
	incr *dmtcp.DeltaState

	// inflight is the concurrent checkpoint currently writing its image
	// in the background (nil: none). Guarded by mu; a second checkpoint
	// or a restart while one is in flight reports ErrCheckpointInFlight.
	inflight *Pending

	// lazy is the lazy restart currently draining in the background
	// (nil: none). Guarded by mu; a later restart or Close cancels it
	// before discarding the space it serves.
	lazy *lazyHandle

	// migrating marks a live migration in progress (crac.Migrate).
	// Guarded by mu. While set, only the migration itself may take
	// checkpoints — an interleaved user checkpoint would entangle its
	// delta lineage (and the plugin's single dirty baseline) with the
	// migration's pre-copy chain — and restarts are refused outright.
	migrating bool

	// qmu serializes Quiesce/Resume; quiesced is the nesting depth.
	qmu      sync.Mutex
	quiesced int
}

// buildLowerHalf loads a fresh helper program and CUDA library into
// space, returning the library and the published entry-point table.
func buildLowerHalf(cfg settings, space *addrspace.Space) (*loader.Program, *cuda.Library, cracrt.EntryTable, error) {
	helper, err := loader.NewLower(space).Load(loader.HelperSpec(cracrt.Symbols))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("crac: loading helper: %w", err)
	}
	lib, err := cuda.NewLibrary(cfg.libConfig(space))
	if err != nil {
		helper.Unload()
		return nil, nil, nil, fmt.Errorf("crac: initializing CUDA library: %w", err)
	}
	entries := make(cracrt.EntryTable, len(cracrt.Symbols))
	for _, sym := range cracrt.Symbols {
		addr, ok := helper.Entry(sym)
		if !ok {
			lib.Destroy()
			helper.Unload()
			return nil, nil, nil, fmt.Errorf("crac: helper does not export %q", sym)
		}
		entries[sym] = addr
	}
	return helper, lib, entries, nil
}

// aslrIncarnation makes each simulated process incarnation randomize its
// layout differently, as real ASLR does across exec().
var aslrIncarnation atomic.Uint64

func newSpace(cfg settings) *addrspace.Space {
	s := addrspace.New()
	if cfg.aslr {
		s.SetASLR(true, cfg.aslrSeed+int64(aslrIncarnation.Add(1))*0x9e3779b9)
	}
	return s
}

// New launches a CRAC session: it creates the process address space,
// loads the lower-half helper (publishing the CUDA entry-point table),
// initializes the CUDA library, and wires the trampoline runtime and
// the checkpoint engine. With no options the session matches the
// paper's main configuration (Tesla V100, syscall fs switch, no
// compression, ASLR off).
func New(opts ...Option) (*Session, error) {
	return newSession(resolve(opts))
}

func newSession(cfg settings) (*Session, error) {
	space := newSpace(cfg)
	helper, lib, entries, err := buildLowerHalf(cfg, space)
	if err != nil {
		return nil, err
	}
	rt := cracrt.New(lib, entries, cfg.switcher.newSwitcher())
	if cfg.kernels != nil {
		for module, funcs := range cfg.kernels.modules {
			rt.RegisterKernelTable(module, funcs)
		}
	}
	plugin := cracplugin.New(rt)
	plugin.Workers = cfg.workers
	engine := dmtcp.NewEngine()
	engine.Gzip = cfg.gzip
	engine.GzipLevel = cfg.gzipLevel
	engine.Workers = cfg.workers
	engine.ShardSize = cfg.shardSize
	engine.ImageVersion = cfg.imageVersion
	engine.Budget = cfg.budget
	engine.Register(plugin)
	return &Session{
		cfg:    cfg,
		space:  space,
		helper: helper,
		lib:    lib,
		rt:     rt,
		engine: engine,
		plugin: plugin,
	}, nil
}

// Runtime returns the CUDA runtime the application should program
// against (the upper half's "dummy libcuda").
func (s *Session) Runtime() crt.Runtime { return s.rt }

// CRACRuntime returns the concrete CRAC runtime, exposing the call log
// and kernel-table registration for cross-process restore.
func (s *Session) CRACRuntime() *cracrt.Runtime { return s.rt }

// Space returns the session's current address space. Unlike the lower
// half it survives Close (it is plain memory); use Library() == nil to
// detect a closed session.
func (s *Session) Space() *addrspace.Space {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.space
}

// Library returns the current lower-half CUDA library (nil once closed
// or after a failed restart).
func (s *Session) Library() *cuda.Library {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lib
}

// Generation reports how many restarts this session has been through.
func (s *Session) Generation() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.generation
}

// SetRootBlob stores an application pointer-table blob in future images.
func (s *Session) SetRootBlob(b []byte) { s.plugin.SetRootBlob(b) }

// RootBlob returns the blob (after a restore, the one from the image).
func (s *Session) RootBlob() []byte { return s.plugin.RootBlob() }

// reserveCheckpoint claims the session's single checkpoint slot. Every
// checkpoint path — blocking or concurrent — holds the slot for its
// full duration, so two checkpoints can never interleave their epoch
// cuts and plugin staging (which would corrupt the incremental skip
// baseline). The caller must releaseCheckpoint (for async, the
// background goroutine does, and the Pending doubles as the token).
func (s *Session) reserveCheckpoint(name string) (*Pending, error) {
	return s.reserveCheckpointSlot(name, false)
}

// reserveCheckpointSlot is reserveCheckpoint with the migration door:
// while a migration holds the session, only its own rounds (migration
// == true) may claim the slot.
func (s *Session) reserveCheckpointSlot(name string, migration bool) (*Pending, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lib == nil {
		return nil, ErrSessionClosed
	}
	if s.migrating && !migration {
		return nil, fmt.Errorf("%w: cannot checkpoint", ErrMigrationInFlight)
	}
	if s.inflight != nil {
		if s.inflight.name != "" {
			return nil, fmt.Errorf("%w: %q is still being written", ErrCheckpointInFlight, s.inflight.name)
		}
		return nil, ErrCheckpointInFlight
	}
	p := &Pending{name: name, done: make(chan struct{})}
	s.inflight = p
	return p, nil
}

func (s *Session) releaseCheckpoint() {
	s.mu.Lock()
	s.inflight = nil
	s.mu.Unlock()
}

// armFrozen is the stop-the-world window of a concurrent checkpoint.
// Unless the caller already holds a Quiesce, it micro-quiesces for the
// duration of the arming — launch gate (waits out in-flight Memset/
// Memcpy/launches, whose slice writes would otherwise span the arming
// unpreserved), device drain, then memory freeze — so no writer that
// resolved memory before the window can mutate it after the snapshot
// arms. The gates reopen before armFrozen returns; only the returned
// pause was application-visible.
func (s *Session) armFrozen(ctx context.Context, space *addrspace.Space, incremental bool, prev *dmtcp.DeltaState, name string) (*dmtcp.Frozen, time.Duration, error) {
	pauseStart := time.Now()
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.quiesced == 0 {
		s.rt.QuiesceLaunches()
		defer s.rt.ResumeLaunches()
		lib := s.Library()
		if lib == nil {
			return nil, 0, ErrSessionClosed
		}
		// Drain before freezing memory: in-flight kernels still write
		// their results, and the freeze must wait for those writes, not
		// deadlock them.
		if err := lib.DeviceSynchronize(); err != nil {
			return nil, 0, err
		}
		space.Freeze()
		defer space.Thaw()
	}
	// A copy-on-write snapshot reads frozen backing arrays directly,
	// bypassing the lazy fault gate — so a still-draining lazy restart
	// must fully materialize before the snapshot arms, or the image
	// would capture unmaterialized zeros.
	if err := space.DrainLazy(); err != nil {
		return nil, 0, err
	}
	fz, err := s.engine.FreezeCheckpoint(ctx, space, incremental, prev, name)
	if err != nil {
		return nil, 0, err
	}
	// The gate waits and the drain above are application-visible pause
	// too: charge them to the checkpoint's wall clock so Duration always
	// contains PauseDuration.
	fz.StartedAt(pauseStart)
	return fz, time.Since(pauseStart), nil
}

// Checkpoint drains the device and writes a checkpoint image to w. The
// session keeps running afterwards (DMTCP "checkpoint and continue").
// Cancelling ctx aborts the shard pipeline mid-image and returns an
// error matching both ErrCancelled and the context's own error; the
// session remains fully usable, but whatever bytes already reached w
// are not a valid image (checkpoint through a Store for all-or-nothing
// semantics). With WithConcurrentCheckpoint the write runs from a CoW
// snapshot: only the drain + arming pauses other goroutines.
func (s *Session) Checkpoint(ctx context.Context, w io.Writer) (Stats, error) {
	if _, err := s.reserveCheckpoint(""); err != nil {
		return Stats{}, err
	}
	defer s.releaseCheckpoint()
	s.mu.Lock()
	space := s.space
	s.mu.Unlock()
	if s.cfg.concurrent {
		// Snapshot-and-release: stop the world only for drain + CoW
		// arming, then write from the snapshot. Goroutines other than
		// this one keep executing through the whole write.
		fz, pause, err := s.armFrozen(ctx, space, false, nil, "")
		if err != nil {
			return Stats{}, wrapCancelled(err)
		}
		defer fz.Release()
		st, _, err := s.engine.WriteFrozen(ctx, w, fz)
		st.PauseDuration = pause
		return st, wrapCancelled(err)
	}
	st, err := s.engine.Checkpoint(ctx, w, space)
	return st, wrapCancelled(err)
}

// CheckpointTo checkpoints into a Store under name. The Put is atomic:
// a failed or cancelled checkpoint leaves no image (and no partial
// file) behind.
//
// With WithIncremental enabled, CheckpointTo transparently writes
// either a full v3 base or a delta against the previous CheckpointTo
// on this session: the first checkpoint (and every restart, shard-size
// change, or chain reaching its configured depth) produces a base;
// the rest carry only state written since their parent. The chain
// state advances only when the Put commits, so a failed or cancelled
// checkpoint never leaves the lineage pointing at an image that does
// not exist.
func (s *Session) CheckpointTo(ctx context.Context, store Store, name string) (Stats, error) {
	if s.cfg.concurrent {
		// Same snapshot path as CheckpointAsync, waited on: the calling
		// goroutine blocks, but the application's other goroutines run
		// through the whole image write and store commit.
		p, err := s.CheckpointAsync(ctx, store, name)
		if err != nil {
			return Stats{}, err
		}
		return p.Wait()
	}
	store = s.retryWrap(store)
	if s.cfg.incremental > 0 {
		return s.checkpointIncremental(ctx, store, name)
	}
	var st Stats
	err := store.Put(ctx, name, func(w io.Writer) error {
		var cerr error
		st, cerr = s.Checkpoint(ctx, w)
		return cerr
	})
	return st, wrapCancelled(err)
}

// retryWrap applies the session's WithCheckpointRetry policy to a
// store-bound operation (identity when the option is unset). Layered
// here — not inside the stores — so one option covers every entry
// point and caller-provided stores alike.
func (s *Session) retryWrap(store Store) Store {
	if s.cfg.retry == nil {
		return store
	}
	return WithRetry(store, *s.cfg.retry)
}

// incrPrevLocked resolves the lineage the next store-bound checkpoint
// should delta against (nil: write a base), applying the rotation
// guards. Caller holds s.mu.
func (s *Session) incrPrevLocked(store Store, name string) *dmtcp.DeltaState {
	prev := s.incr
	switch {
	case prev == nil:
	case singleImageStore(store):
		// A FileStore backs every name with one path: a delta written
		// there would replace the very base it depends on, regardless
		// of the names used. Such stores only ever get self-contained
		// images.
		prev = nil
	case prev.Depth >= s.cfg.incremental:
		prev = nil // chain is full: rotate to a fresh base
	case prev.InChain(name):
		// The target name is one the chain still depends on (e.g. a
		// fixed name reused every checkpoint): writing a delta there
		// would overwrite its own ancestor. Write a self-contained base
		// instead.
		prev = nil
	}
	return prev
}

func (s *Session) checkpointIncremental(ctx context.Context, store Store, name string) (Stats, error) {
	if _, err := s.reserveCheckpoint(name); err != nil {
		return Stats{}, err
	}
	defer s.releaseCheckpoint()
	s.mu.Lock()
	space := s.space
	prev := s.incrPrevLocked(store, name)
	s.mu.Unlock()
	var st Stats
	var next *dmtcp.DeltaState
	err := store.Put(ctx, name, func(w io.Writer) error {
		var cerr error
		st, next, cerr = s.engine.CheckpointDelta(ctx, w, space, prev, name)
		return cerr
	})
	if err != nil {
		return st, wrapCancelled(err)
	}
	// The image is durable: advance the chain and the plugin's drain
	// baseline together.
	s.plugin.CommitIncremental()
	s.mu.Lock()
	s.incr = next
	s.mu.Unlock()
	return st, nil
}

// Pending is a concurrent checkpoint in flight: CheckpointAsync armed
// its snapshot inside the stop-the-world window and the image is being
// written in the background while the application executes.
type Pending struct {
	name string
	done chan struct{}
	st   Stats
	err  error
}

// Name returns the store name the checkpoint is being written under.
func (p *Pending) Name() string { return p.name }

// Done returns a channel closed when the checkpoint has committed (or
// failed); use it to select alongside application work.
func (p *Pending) Done() <-chan struct{} { return p.done }

// Wait blocks until the checkpoint commits and returns its Stats. The
// error follows CheckpointTo's contract: on failure (including
// cancellation) the Store holds no partial image and the session keeps
// running.
func (p *Pending) Wait() (Stats, error) {
	<-p.done
	return p.st, p.err
}

// CheckpointAsync takes a snapshot-and-release checkpoint: the
// application is stopped only for the stream drain, the epoch cut, and
// the copy-on-write arming of the address space — all O(metadata) —
// and by the time CheckpointAsync returns, execution may continue. The
// shard pipeline, compression, and the Store commit run on a background
// goroutine against the snapshot; the committed image is byte-identical
// to a blocking CheckpointTo at the cut, no matter how hard the
// application mutates memory during the overlap.
//
// With WithIncremental, the checkpoint joins the session's delta chain
// exactly as CheckpointTo does; the chain state and the plugin's skip
// baseline advance only when the Put commits.
//
// Only one checkpoint may be in flight: a second CheckpointAsync (or a
// blocking checkpoint, or a restart) while one is pending reports
// ErrCheckpointInFlight. A failed or cancelled overlapped checkpoint
// leaves no partial image in the Store and releases every retained
// copy-on-write page.
//
// ctx governs the overlapped write, not just the arming: it must stay
// live until Pending.Wait (or Done) reports completion. In particular,
// `defer cancel()` in a function that returns right after
// CheckpointAsync cancels the background write and the checkpoint
// surfaces ErrCancelled from Wait.
func (s *Session) CheckpointAsync(ctx context.Context, store Store, name string) (*Pending, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	incremental := s.cfg.incremental > 0
	store = s.retryWrap(store)
	p, err := s.reserveCheckpoint(name)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	space := s.space
	var prev *dmtcp.DeltaState
	if incremental {
		prev = s.incrPrevLocked(store, name)
	}
	s.mu.Unlock()

	// The stop-the-world window: drain, cut, arm (micro-quiesced so no
	// in-flight writer spans the arming). Everything after armFrozen
	// returns overlaps with application execution.
	fz, pause, err := s.armFrozen(ctx, space, incremental, prev, name)
	if err != nil {
		s.releaseCheckpoint()
		return nil, wrapCancelled(err)
	}

	go func() {
		var st Stats
		var next *dmtcp.DeltaState
		err := store.Put(ctx, name, func(w io.Writer) error {
			var cerr error
			st, next, cerr = s.engine.WriteFrozen(ctx, w, fz)
			return cerr
		})
		// Success or not, every retained CoW page is dropped here.
		fz.Release()
		st.PauseDuration = pause
		if err == nil && incremental {
			s.plugin.CommitIncremental()
			s.mu.Lock()
			s.incr = next
			s.mu.Unlock()
		}
		p.st = st
		p.err = wrapCancelled(err)
		s.releaseCheckpoint()
		close(p.done)
	}()
	return p, nil
}

// Restart simulates killing the process and restarting it from the image
// in r: the entire old address space (upper and lower halves, including
// the old CUDA library) is discarded; a fresh lower half is loaded; the
// upper-half regions are restored from the image; the CUDA call log is
// replayed against the fresh library so every allocation reappears at
// its original address; and the saved memory of active mallocs is
// refilled. The application continues through the same Runtime value,
// its virtual handles transparently re-mapped.
//
// Restart is destructive: once the old lower half is torn down, an
// error (including cancellation) leaves the session closed — only a
// fresh Restore can revive the image.
func (s *Session) Restart(ctx context.Context, r io.Reader) error {
	img, err := OpenImage(r)
	if err != nil {
		return err
	}
	return s.RestartImage(ctx, img)
}

// RestartImage restarts from an already-opened image. A v3 delta must
// be materialized first (open it through OpenImageFrom, which follows
// the parent chain inside its Store): a bare delta reports
// ErrDeltaChain.
func (s *Session) RestartImage(ctx context.Context, img *Image) error {
	if !img.img.Complete() {
		return fmt.Errorf("%w: open the image through its Store to materialize the chain", ErrDeltaChain)
	}
	return wrapCancelled(s.restartFromImage(ctx, img.img))
}

// RestartFrom restarts from the named image in a Store. A delta image's
// parent chain is followed through the same Store and materialized
// transparently. With WithLazyRestart the restart is lazy: RestartFrom
// returns as soon as the session can execute (metadata + replay only)
// and the image drains in the background — use RestartAsync directly
// to observe the drain.
func (s *Session) RestartFrom(ctx context.Context, store Store, name string) error {
	if s.cfg.lazyRestart {
		_, err := s.RestartAsync(ctx, store, name)
		return err
	}
	img, err := OpenImageFrom(ctx, s.retryWrap(store), name)
	if err != nil {
		return err
	}
	return s.RestartImage(ctx, img)
}

// RestartCheckpoint implements dmtcp.Restarter, making a Session a
// restartable rank under a Coordinator's RestartAll: the rank is
// rolled back to the coordinated checkpoint in r. Restart's contract
// applies — a failure past teardown leaves the session closed.
func (s *Session) RestartCheckpoint(r io.Reader) error {
	return s.Restart(context.Background(), r)
}

// Rebase breaks the session's incremental lineage: the next store-
// bound checkpoint writes a self-contained v3 base instead of a delta,
// whatever the chain state was. Repair paths use it when the stored
// chain is no longer trustworthy (see RepairChain); it is also the
// escape hatch when a chain's store is being switched mid-session.
func (s *Session) Rebase() {
	s.mu.Lock()
	s.incr = nil
	s.mu.Unlock()
}

func (s *Session) restartFromImage(ctx context.Context, img *dmtcp.Image) error {
	if ctx == nil {
		ctx = context.Background()
	}
	logBytes, ok := img.Sections.Get(cracplugin.SectionLog)
	if !ok {
		return fmt.Errorf("%w: image has no %s section", ErrBadImage, cracplugin.SectionLog)
	}
	log, err := replaylog.DecodeBytes(logBytes)
	if err != nil {
		return fmt.Errorf("%w: decoding image log: %v", ErrBadImage, err)
	}

	// A quiesced session cannot restart: log replay would block on the
	// held launch gate, and the fresh address space could never balance
	// the pending Resume's Thaw. qmu stays held for the whole restart so
	// a racing Quiesce cannot freeze the old space mid-swap (its Resume
	// would then thaw the new, never-frozen one).
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.quiesced > 0 {
		return fmt.Errorf("%w: resume before restarting", ErrQuiesced)
	}
	s.mu.Lock()
	if s.migrating {
		// A restart mid-migration would discard the very state the
		// pre-copy rounds are moving.
		s.mu.Unlock()
		return fmt.Errorf("%w: cannot restart", ErrMigrationInFlight)
	}
	if s.inflight != nil {
		// A restart discards the address space an overlapped checkpoint
		// is still reading from; wait the Pending out first.
		s.mu.Unlock()
		return fmt.Errorf("%w: cannot restart", ErrCheckpointInFlight)
	}
	oldLib, oldHelper, oldLazy := s.lib, s.helper, s.lazy
	// The lower half is about to die: clear the pointers first so a
	// failure below (or a concurrent Close) can never tear the same
	// objects down twice.
	s.lib, s.helper, s.lazy = nil, nil, nil
	s.mu.Unlock()
	if oldLib == nil {
		return ErrSessionClosed
	}
	// A still-draining lazy restart serves the space about to be
	// discarded: stop it before tearing the world down.
	if oldLazy != nil {
		oldLazy.detach()
	}

	// The old process dies: tear down its device and lower half.
	oldLib.Destroy()
	oldHelper.Unload()

	// A new process: fresh address space, fresh lower half. With ASLR
	// off, the helper and the arenas land at the same addresses.
	space := newSpace(s.cfg)
	helper, lib, entries, err := buildLowerHalf(s.cfg, space)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		lib.Destroy()
		helper.Unload()
		return err
	}
	// DMTCP restores the upper-half memory first...
	if err := dmtcp.RestoreRegionsN(ctx, img, space, s.cfg.workers); err != nil {
		return abort(err)
	}
	// ...then the CRAC plugin replays the log into the fresh library,
	// re-creating allocations/streams/events/fat binaries...
	if err := s.rt.Rebind(lib, entries, log); err != nil {
		return abort(err)
	}
	// ...and refills the drained device/pinned/managed memory.
	if err := s.engine.RunRestartHooks(ctx, img); err != nil {
		return abort(err)
	}

	s.mu.Lock()
	s.space, s.helper, s.lib = space, helper, lib
	s.generation++
	// The restored process starts a fresh lineage: the old chain's epoch
	// cuts are meaningless against the new address space, so the next
	// incremental checkpoint must be a base.
	s.incr = nil
	s.mu.Unlock()
	s.plugin.ResetIncremental()
	return nil
}

// Restore builds a brand-new session (a new process) from a checkpoint
// image — the cross-process restart path (cracrun writes an image; a
// later process restores it). Pass WithKernels so replay can resolve
// kernel names in the restored process, standing in for the device code
// in its text segment.
func Restore(ctx context.Context, r io.Reader, opts ...Option) (*Session, error) {
	img, err := OpenImage(r)
	if err != nil {
		return nil, err
	}
	return RestoreImage(ctx, img, opts...)
}

// RestoreImage builds a new session from an already-opened image.
func RestoreImage(ctx context.Context, img *Image, opts ...Option) (*Session, error) {
	s, err := New(opts...)
	if err != nil {
		return nil, err
	}
	if err := s.RestartImage(ctx, img); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// RestoreFrom builds a new session from the named image in a Store,
// materializing delta chains through the same Store. With
// WithLazyRestart the restore is lazy: the session returns ready to
// execute while the image drains in the background.
func RestoreFrom(ctx context.Context, store Store, name string, opts ...Option) (*Session, error) {
	cfg := resolve(opts)
	if cfg.retry != nil {
		store = WithRetry(store, *cfg.retry)
	}
	if cfg.lazyRestart {
		s, err := newSession(cfg)
		if err != nil {
			return nil, err
		}
		if _, err := s.RestartAsync(ctx, store, name); err != nil {
			s.Close()
			return nil, err
		}
		return s, nil
	}
	img, err := OpenImageFrom(ctx, store, name)
	if err != nil {
		return nil, err
	}
	return RestoreImage(ctx, img, opts...)
}

// Close tears the session down. It is idempotent: a second Close (or a
// Close after a failed restart already tore the lower half down) is a
// no-op. Closing a quiesced session (a migrated source, say) releases
// the quiesce first: teardown unmaps the address space, which would
// otherwise deadlock against the frozen space's write gate.
func (s *Session) Close() {
	s.qmu.Lock()
	if s.quiesced > 0 {
		s.mu.Lock()
		space := s.space
		s.mu.Unlock()
		s.quiesced = 0
		space.Thaw()
		s.rt.ResumeLaunches()
	}
	s.qmu.Unlock()
	s.mu.Lock()
	lib, helper, lazy := s.lib, s.helper, s.lazy
	s.lib, s.helper, s.lazy = nil, nil, nil
	s.mu.Unlock()
	if lazy != nil {
		lazy.detach()
	}
	if lib != nil {
		lib.Destroy()
	}
	if helper != nil {
		helper.Unload()
	}
}

// Quiesce brings the session to a checkpointable standstill and holds
// it there: new kernel launches block before they reach the device, the
// device drains, and every application-side memory mutation (WriteAt,
// writable Slice, mmap/munmap/mprotect) blocks until Resume. Reads are
// unaffected, so checkpoints may be taken while quiesced. Quiesce
// nests; each call must be balanced by exactly one Resume. It also
// implements dmtcp.Member for coordinated multi-rank checkpoints.
func (s *Session) Quiesce() error {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	s.mu.Lock()
	lib, space := s.lib, s.space
	s.mu.Unlock()
	if lib == nil {
		return ErrSessionClosed
	}
	if s.quiesced > 0 {
		s.quiesced++
		return nil
	}
	// Order matters: bar new launches first (the gate also waits out
	// launches mid-enqueue), then drain what the device already holds,
	// then freeze memory — a drained kernel may still be writing its
	// results while the drain runs, so the freeze comes last.
	s.rt.QuiesceLaunches()
	if err := lib.DeviceSynchronize(); err != nil {
		s.rt.ResumeLaunches()
		return err
	}
	space.Freeze()
	s.quiesced = 1
	return nil
}

// WriteCheckpoint implements dmtcp.Member.
func (s *Session) WriteCheckpoint(w io.Writer) error {
	_, err := s.Checkpoint(context.Background(), w)
	return err
}

// Resume releases one level of Quiesce, unblocking memory writes and
// kernel launches when the last level drops. An unbalanced Resume (no
// matching Quiesce) reports ErrNotQuiesced. Implements dmtcp.Member.
func (s *Session) Resume() error {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.quiesced == 0 {
		return ErrNotQuiesced
	}
	s.quiesced--
	if s.quiesced == 0 {
		s.mu.Lock()
		space := s.space
		s.mu.Unlock()
		space.Thaw()
		s.rt.ResumeLaunches()
	}
	return nil
}

// NewNative builds the uninstrumented baseline: the same simulated device
// and CUDA library, bound directly (no trampoline, no logging, no
// checkpoint support). This is the "native" configuration of the paper's
// overhead measurements.
func NewNative(opts ...Option) (*crt.Native, error) {
	cfg := resolve(opts)
	space := newSpace(cfg)
	lib, err := cuda.NewLibrary(cfg.libConfig(space))
	if err != nil {
		return nil, err
	}
	return crt.NewNative(lib), nil
}
