package crac

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/addrspace"
	"repro/internal/cracplugin"
	"repro/internal/cracrt"
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/dmtcp"
	"repro/internal/fsgs"
	"repro/internal/gpusim"
	"repro/internal/loader"
	"repro/internal/replaylog"
)

// SwitcherKind selects the fs-register switching mechanism used by the
// upper→lower trampoline (paper Section 4.4.5).
type SwitcherKind int

// Switcher kinds.
const (
	// SwitchSyscall switches fs through a kernel call, as on an
	// unpatched Linux kernel (the default, matching the paper's main
	// experiments).
	SwitchSyscall SwitcherKind = iota
	// SwitchFSGSBase switches fs with the WRFSBASE instruction, as on a
	// kernel with the FSGSBASE patch.
	SwitchFSGSBase
	// SwitchNone performs no switching (used for calibration only; a
	// real split process always switches).
	SwitchNone
)

func (k SwitcherKind) newSwitcher() fsgs.Switcher {
	switch k {
	case SwitchFSGSBase:
		return fsgs.NewFSGSBase()
	case SwitchNone:
		return fsgs.None{}
	default:
		return fsgs.NewSyscall()
	}
}

// Config configures a Session.
type Config struct {
	// Prop selects the simulated device; zero value = Tesla V100.
	Prop gpusim.Properties
	// Switch selects the fs-register switch mechanism.
	Switch SwitcherKind
	// GzipImage compresses checkpoint images. The paper's experiments
	// disable compression; so does the default.
	GzipImage bool
	// GzipLevel selects the compression level when GzipImage is on
	// (gzip.BestSpeed..gzip.BestCompression); 0 = default level. Each
	// shard compresses independently, so higher levels still scale
	// across CheckpointWorkers.
	GzipLevel int
	// CheckpointWorkers bounds the checkpoint/restart data-path fan-out
	// (image write pipeline, active-malloc drain, region/memory
	// refill): <=0 uses all CPUs, 1 forces the serial reference path.
	CheckpointWorkers int
	// CheckpointShardSize overrides the v2 image shard granularity
	// (bytes); 0 = dmtcp.DefaultShardSize.
	CheckpointShardSize int
	// ASLR enables address-space randomization. CRAC requires it off
	// (the default); enabling it demonstrates the replay-mismatch
	// failure of Section 3.2.4.
	ASLR     bool
	ASLRSeed int64
	// Arena tuning, passed through to the CUDA library.
	DeviceArenaChunk  uint64
	PinnedArenaChunk  uint64
	ManagedArenaChunk uint64
	GrowthMmaps       int
}

func (c Config) libConfig(space *addrspace.Space) cuda.Config {
	return cuda.Config{
		Prop:              c.Prop,
		Space:             space,
		DeviceArenaChunk:  c.DeviceArenaChunk,
		PinnedArenaChunk:  c.PinnedArenaChunk,
		ManagedArenaChunk: c.ManagedArenaChunk,
		GrowthMmaps:       c.GrowthMmaps,
	}
}

// Session is one CUDA application execution under CRAC: a single
// simulated process whose address space holds the checkpointed upper half
// (application) and a disposable lower half (helper program + active
// CUDA library), per Figure 1 of the paper.
type Session struct {
	cfg Config

	mu         sync.Mutex
	space      *addrspace.Space
	helper     *loader.Program
	lib        *cuda.Library
	rt         *cracrt.Runtime
	engine     *dmtcp.Engine
	plugin     *cracplugin.Plugin
	generation int // incremented on every restart
}

// buildLowerHalf loads a fresh helper program and CUDA library into
// space, returning the library and the published entry-point table.
func buildLowerHalf(cfg Config, space *addrspace.Space) (*loader.Program, *cuda.Library, cracrt.EntryTable, error) {
	helper, err := loader.NewLower(space).Load(loader.HelperSpec(cracrt.Symbols))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("crac: loading helper: %w", err)
	}
	lib, err := cuda.NewLibrary(cfg.libConfig(space))
	if err != nil {
		helper.Unload()
		return nil, nil, nil, fmt.Errorf("crac: initializing CUDA library: %w", err)
	}
	entries := make(cracrt.EntryTable, len(cracrt.Symbols))
	for _, sym := range cracrt.Symbols {
		addr, ok := helper.Entry(sym)
		if !ok {
			lib.Destroy()
			helper.Unload()
			return nil, nil, nil, fmt.Errorf("crac: helper does not export %q", sym)
		}
		entries[sym] = addr
	}
	return helper, lib, entries, nil
}

// aslrIncarnation makes each simulated process incarnation randomize its
// layout differently, as real ASLR does across exec().
var aslrIncarnation atomic.Uint64

func newSpace(cfg Config) *addrspace.Space {
	s := addrspace.New()
	if cfg.ASLR {
		s.SetASLR(true, cfg.ASLRSeed+int64(aslrIncarnation.Add(1))*0x9e3779b9)
	}
	return s
}

// NewSession launches a CRAC session: it creates the process address
// space, loads the lower-half helper (publishing the CUDA entry-point
// table), initializes the CUDA library, and wires the trampoline runtime
// and the checkpoint engine.
func NewSession(cfg Config) (*Session, error) {
	space := newSpace(cfg)
	helper, lib, entries, err := buildLowerHalf(cfg, space)
	if err != nil {
		return nil, err
	}
	rt := cracrt.New(lib, entries, cfg.Switch.newSwitcher())
	plugin := cracplugin.New(rt)
	plugin.Workers = cfg.CheckpointWorkers
	engine := dmtcp.NewEngine()
	engine.Gzip = cfg.GzipImage
	engine.GzipLevel = cfg.GzipLevel
	engine.Workers = cfg.CheckpointWorkers
	engine.ShardSize = cfg.CheckpointShardSize
	engine.Register(plugin)
	return &Session{
		cfg:    cfg,
		space:  space,
		helper: helper,
		lib:    lib,
		rt:     rt,
		engine: engine,
		plugin: plugin,
	}, nil
}

// Runtime returns the CUDA runtime the application should program
// against (the upper half's "dummy libcuda").
func (s *Session) Runtime() crt.Runtime { return s.rt }

// CRACRuntime returns the concrete CRAC runtime, exposing the call log
// and kernel-table registration for cross-process restore.
func (s *Session) CRACRuntime() *cracrt.Runtime { return s.rt }

// Space returns the session's current address space.
func (s *Session) Space() *addrspace.Space {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.space
}

// Library returns the current lower-half CUDA library.
func (s *Session) Library() *cuda.Library {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lib
}

// Generation reports how many restarts this session has been through.
func (s *Session) Generation() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.generation
}

// SetRootBlob stores an application pointer-table blob in future images.
func (s *Session) SetRootBlob(b []byte) { s.plugin.SetRootBlob(b) }

// RootBlob returns the blob (after a restore, the one from the image).
func (s *Session) RootBlob() []byte { return s.plugin.RootBlob() }

// Checkpoint drains the device and writes a checkpoint image to w. The
// session keeps running afterwards (DMTCP "checkpoint and continue").
func (s *Session) Checkpoint(w io.Writer) (dmtcp.Stats, error) {
	s.mu.Lock()
	space := s.space
	s.mu.Unlock()
	return s.engine.Checkpoint(w, space)
}

// CheckpointFile checkpoints to a file and returns its size.
func (s *Session) CheckpointFile(path string) (int64, dmtcp.Stats, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, dmtcp.Stats{}, err
	}
	st, err := s.Checkpoint(f)
	if err != nil {
		f.Close()
		return 0, st, err
	}
	if err := f.Close(); err != nil {
		return 0, st, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return 0, st, err
	}
	return fi.Size(), st, nil
}

// Restart simulates killing the process and restarting it from the image
// in r: the entire old address space (upper and lower halves, including
// the old CUDA library) is discarded; a fresh lower half is loaded; the
// upper-half regions are restored from the image; the CUDA call log is
// replayed against the fresh library so every allocation reappears at
// its original address; and the saved memory of active mallocs is
// refilled. The application continues through the same Runtime value,
// its virtual handles transparently re-mapped.
func (s *Session) Restart(r io.Reader) error {
	img, err := dmtcp.ReadImage(r)
	if err != nil {
		return err
	}
	return s.restartFromImage(img)
}

// RestartFile restarts from an image file.
func (s *Session) RestartFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Restart(f)
}

func (s *Session) restartFromImage(img *dmtcp.Image) error {
	logBytes, ok := img.Sections.Get(cracplugin.SectionLog)
	if !ok {
		return fmt.Errorf("crac: image has no %s section", cracplugin.SectionLog)
	}
	log, err := replaylog.DecodeBytes(logBytes)
	if err != nil {
		return fmt.Errorf("crac: decoding image log: %w", err)
	}

	s.mu.Lock()
	oldLib, oldHelper := s.lib, s.helper
	s.mu.Unlock()

	// The old process dies: tear down its device and lower half.
	oldLib.Destroy()
	oldHelper.Unload()

	// A new process: fresh address space, fresh lower half. With ASLR
	// off, the helper and the arenas land at the same addresses.
	space := newSpace(s.cfg)
	helper, lib, entries, err := buildLowerHalf(s.cfg, space)
	if err != nil {
		return err
	}
	// DMTCP restores the upper-half memory first...
	if err := dmtcp.RestoreRegionsN(img, space, s.cfg.CheckpointWorkers); err != nil {
		lib.Destroy()
		helper.Unload()
		return err
	}
	// ...then the CRAC plugin replays the log into the fresh library,
	// re-creating allocations/streams/events/fat binaries...
	if err := s.rt.Rebind(lib, entries, log); err != nil {
		lib.Destroy()
		helper.Unload()
		return err
	}
	// ...and refills the drained device/pinned/managed memory.
	if err := s.engine.RunRestartHooks(img); err != nil {
		lib.Destroy()
		helper.Unload()
		return err
	}

	s.mu.Lock()
	s.space, s.helper, s.lib = space, helper, lib
	s.generation++
	s.mu.Unlock()
	return nil
}

// Restore builds a brand-new session (a new process) from a checkpoint
// image — the cross-process restart path (cracrun writes an image; a later process restores it).
// kernelTables resolves kernel names to functions, standing in for the
// device code in the restored application's text segment; workloads
// export their tables for this purpose.
func Restore(r io.Reader, cfg Config, kernelTables map[string]map[string]cuda.Kernel) (*Session, error) {
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	for module, funcs := range kernelTables {
		s.rt.RegisterKernelTable(module, funcs)
	}
	img, err := dmtcp.ReadImage(r)
	if err != nil {
		return nil, err
	}
	if err := s.restartFromImage(img); err != nil {
		return nil, err
	}
	return s, nil
}

// RestoreFile restores a new session from an image file.
func RestoreFile(path string, cfg Config, kernelTables map[string]map[string]cuda.Kernel) (*Session, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Restore(f, cfg, kernelTables)
}

// Close tears the session down.
func (s *Session) Close() {
	s.mu.Lock()
	lib, helper := s.lib, s.helper
	s.mu.Unlock()
	if lib != nil {
		lib.Destroy()
	}
	if helper != nil {
		helper.Unload()
	}
}

// Quiesce implements dmtcp.Member for coordinated multi-rank checkpoints.
func (s *Session) Quiesce() error {
	return s.Library().DeviceSynchronize()
}

// WriteCheckpoint implements dmtcp.Member.
func (s *Session) WriteCheckpoint(w io.Writer) error {
	_, err := s.Checkpoint(w)
	return err
}

// Resume implements dmtcp.Member.
func (s *Session) Resume() error { return nil }

// NewNative builds the uninstrumented baseline: the same simulated device
// and CUDA library, bound directly (no trampoline, no logging, no
// checkpoint support). This is the "native" configuration of the paper's
// overhead measurements.
func NewNative(cfg Config) (*crt.Native, error) {
	space := newSpace(cfg)
	lib, err := cuda.NewLibrary(cfg.libConfig(space))
	if err != nil {
		return nil, err
	}
	return crt.NewNative(lib), nil
}
