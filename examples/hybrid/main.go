// Hybrid: the MPI+CUDA proof of principle from the paper's conclusion
// (Section 6) — several "MPI ranks", each a CUDA application under CRAC,
// checkpointed in a coordinated fashion by a DMTCP-style coordinator:
// all ranks quiesce (drain their GPUs) at a barrier, all images are
// written, all ranks resume, and later every rank restarts from its own
// image.
//
// Run with: go run ./examples/hybrid
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	crac "repro"
	"repro/internal/crt"
	"repro/internal/dmtcp"
	"repro/internal/kernels"
)

const (
	ranks = 4
	n     = 1 << 14
)

// rank is one MPI rank running a CUDA workload under CRAC.
type rank struct {
	id      int
	session *crac.Session
	rt      crt.Runtime
	fat     crt.FatBinHandle
	data    uint64
}

func newRank(id int) (*rank, error) {
	s, err := crac.New()
	if err != nil {
		return nil, err
	}
	rt := s.Runtime()
	fat, err := rt.RegisterFatBinary(kernels.Module)
	if err != nil {
		return nil, err
	}
	for name, k := range kernels.Table() {
		if err := rt.RegisterFunction(fat, name, k); err != nil {
			return nil, err
		}
	}
	data, err := rt.Malloc(4 * n)
	if err != nil {
		return nil, err
	}
	r := &rank{id: id, session: s, rt: rt, fat: fat, data: data}
	return r, r.step(float32(id + 1)) // initialize rank-specific data
}

func (r *rank) lc() crt.LaunchConfig {
	return crt.LaunchConfig{Grid: crt.Dim3{X: n / 256}, Block: crt.Dim3{X: 256}}
}

// step runs one compute phase on the rank's GPU.
func (r *rank) step(v float32) error {
	return r.rt.LaunchKernel(r.fat, "fill", r.lc(), crt.DefaultStream, r.data, kernels.F32Arg(v), n)
}

// value reads back one element.
func (r *rank) value() (float32, error) {
	host, err := r.rt.AppAlloc(4)
	if err != nil {
		return 0, err
	}
	if err := r.rt.Memcpy(host, r.data, 4, crt.MemcpyDeviceToHost); err != nil {
		return 0, err
	}
	v, err := crt.HostF32(r.rt, host, 1)
	if err != nil {
		return 0, err
	}
	return v[0], nil
}

func main() {
	dir, err := os.MkdirTemp("", "crac-hybrid-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Build the "MPI job": four ranks under one coordinator.
	coord := dmtcp.NewCoordinator()
	rs := make([]*rank, ranks)
	for i := range rs {
		rs[i], err = newRank(i)
		if err != nil {
			log.Fatalf("rank %d: %v", i, err)
		}
		coord.Add(i, rs[i].session)
	}
	fmt.Printf("launched %d MPI ranks, each with a GPU workload under CRAC\n", ranks)

	// Mid-job coordinated checkpoint: quiesce barrier → parallel image
	// writes → resume.
	imgPath := func(i int) string { return filepath.Join(dir, fmt.Sprintf("rank%d.img", i)) }
	err = coord.CheckpointAll(func(r int) (io.WriteCloser, error) {
		return os.Create(imgPath(r))
	})
	if err != nil {
		log.Fatalf("coordinated checkpoint: %v", err)
	}
	fmt.Println("coordinated checkpoint complete (quiesce barrier + parallel writes)")

	// The job keeps computing after the checkpoint...
	for i, r := range rs {
		if err := r.step(float32(100 + i)); err != nil {
			log.Fatal(err)
		}
	}
	// ...then the whole job "fails" and every rank restarts from its
	// image, rolling back to the checkpointed state. The images the
	// coordinator wrote form a one-file-per-rank DirStore, so the
	// restart side goes through the Store API.
	store := &crac.DirStore{Dir: dir}
	ctx := context.Background()
	for i, r := range rs {
		if err := r.session.RestartFrom(ctx, store, fmt.Sprintf("rank%d", i)); err != nil {
			log.Fatalf("rank %d restart: %v", i, err)
		}
	}
	fmt.Println("all ranks restarted from their images")

	for i, r := range rs {
		got, err := r.value()
		if err != nil {
			log.Fatal(err)
		}
		want := float32(i + 1) // the pre-checkpoint state
		status := "OK"
		if got != want {
			status = "MISMATCH"
		}
		fmt.Printf("rank %d: data = %v (want %v) %s\n", i, got, want, status)
		if got != want {
			os.Exit(1)
		}
		r.session.Close()
	}
	fmt.Println("OK: coordinated multi-rank checkpoint/restart (MPI+CUDA proof of principle)")
}
