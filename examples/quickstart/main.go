// Quickstart: run a CUDA vector addition under CRAC, checkpoint it into
// an image store, simulate a failure, restart from the stored image, and
// keep computing — the minimal end-to-end tour of the library.
//
// The tour covers the whole public surface in order:
//
//  1. crac.New(options...)        — launch a session
//  2. session.Runtime()           — the CUDA runtime the app programs against
//  3. session.CheckpointTo(ctx)   — atomic checkpoint into a crac.Store
//  4. crac.OpenImageFrom          — inspect the image without restoring it
//  5. session.RestartFrom(ctx)    — restart in-process from the store
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	crac "repro"
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/kernels"
)

func main() {
	ctx := context.Background()

	// 1. Launch a CRAC session: one simulated process with the
	// application in the upper half and a disposable CUDA library in the
	// lower half. Options tune the session; the defaults match the
	// paper's main configuration (V100, syscall fs switch, no gzip).
	session, err := crac.New(crac.WithWorkers(0))
	if err != nil {
		log.Fatalf("crac: %v", err)
	}
	defer session.Close()
	rt := session.Runtime()

	// 2. Register the kernel library (the application's fat binary) and
	// set up device memory.
	fat, err := rt.RegisterFatBinary(kernels.Module)
	check(err)
	for name, k := range kernels.Table() {
		check(rt.RegisterFunction(fat, name, k))
	}
	const n = 1 << 16
	a, err := rt.Malloc(4 * n)
	check(err)
	b, err := rt.Malloc(4 * n)
	check(err)
	c, err := rt.Malloc(4 * n)
	check(err)
	check(rt.LaunchKernel(fat, "iota", kernels1D(n), crt.DefaultStream, a, kernels.F32Arg(1), n))
	check(rt.LaunchKernel(fat, "iota", kernels1D(n), crt.DefaultStream, b, kernels.F32Arg(2), n))

	// 3. First half of the computation: c = a + b.
	check(rt.LaunchKernel(fat, "vecAdd", kernels1D(n), crt.DefaultStream, a, b, c, n))
	check(rt.DeviceSynchronize())
	fmt.Printf("before checkpoint: c[100] = %v (want %v)\n", peek(rt, c, 100), 300.0)

	// 4. Checkpoint into a Store. The checkpoint drains the device,
	// saves the upper half, the call log, and the memory of active
	// mallocs — the CUDA library itself is NOT saved. Put is atomic: a
	// failed or cancelled checkpoint leaves nothing behind. MemStore
	// keeps images in memory; swap in NewDirStore for one file per
	// generation with retention, or NewFileStore for a single file.
	store := crac.NewMemStore()
	stats, err := session.CheckpointTo(ctx, store, "quickstart")
	check(err)
	fmt.Printf("checkpoint: %d upper-half regions, %d KiB payload\n",
		stats.Regions, (stats.RegionBytes+stats.SectionBytes)/1024)

	// 5. The image is a first-class artifact: open it WITHOUT restoring
	// to see what a restore would replay.
	img, err := crac.OpenImageFrom(ctx, store, "quickstart")
	check(err)
	if lg, err := img.Log(); err == nil && lg != nil {
		fmt.Printf("image: v%d, %d log entries, %d active device buffers\n",
			img.Info().Version, lg.Entries, lg.Device.Buffers)
	}

	// 6. Simulated failure + restart: the old lower half is discarded, a
	// fresh CUDA library is brought up, the log is replayed so a, b, c
	// reappear at the same addresses, and their contents are refilled.
	check(session.RestartFrom(ctx, store, "quickstart"))
	fmt.Printf("restarted (generation %d)\n", session.Generation())

	// 7. The application continues with the same handles and pointers:
	// c *= 2.
	check(rt.LaunchKernel(fat, "scale", kernels1D(n), crt.DefaultStream, c, kernels.F32Arg(2), n))
	check(rt.DeviceSynchronize())
	got := peek(rt, c, 100)
	fmt.Printf("after restart:   c[100] = %v (want %v)\n", got, 600.0)
	if got != 600 {
		log.Fatal("MISMATCH — checkpoint/restart was not transparent")
	}
	fmt.Println("OK: computation transparent across checkpoint/restart")
}

func kernels1D(n int) crt.LaunchConfig {
	return crt.LaunchConfig{Grid: crt.Dim3{X: (n + 255) / 256}, Block: crt.Dim3{X: 256}}
}

// peek reads one float32 element from device memory.
func peek(rt crt.Runtime, dev uint64, idx int) float32 {
	host, err := rt.AppAlloc(4)
	check(err)
	check(rt.Memcpy(host, dev+uint64(4*idx), 4, cuda.MemcpyDeviceToHost))
	v, err := crt.HostF32(rt, host, 1)
	check(err)
	return v[0]
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
