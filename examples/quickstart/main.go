// Quickstart: run a CUDA vector addition under CRAC, checkpoint it,
// simulate a failure, restart from the image, and keep computing — the
// minimal end-to-end tour of the library.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	crac "repro"
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/kernels"
)

func main() {
	// 1. Launch a CRAC session: one simulated process with the
	// application in the upper half and a disposable CUDA library in the
	// lower half.
	session, err := crac.NewSession(crac.Config{})
	if err != nil {
		log.Fatalf("crac: %v", err)
	}
	defer session.Close()
	rt := session.Runtime()

	// 2. Register the kernel library (the application's fat binary) and
	// set up device memory.
	fat, err := rt.RegisterFatBinary(kernels.Module)
	check(err)
	for name, k := range kernels.Table() {
		check(rt.RegisterFunction(fat, name, k))
	}
	const n = 1 << 16
	a, err := rt.Malloc(4 * n)
	check(err)
	b, err := rt.Malloc(4 * n)
	check(err)
	c, err := rt.Malloc(4 * n)
	check(err)
	check(rt.LaunchKernel(fat, "iota", kernels1D(n), crt.DefaultStream, a, kernels.F32Arg(1), n))
	check(rt.LaunchKernel(fat, "iota", kernels1D(n), crt.DefaultStream, b, kernels.F32Arg(2), n))

	// 3. First half of the computation: c = a + b.
	check(rt.LaunchKernel(fat, "vecAdd", kernels1D(n), crt.DefaultStream, a, b, c, n))
	check(rt.DeviceSynchronize())
	fmt.Printf("before checkpoint: c[100] = %v (want %v)\n", peek(rt, c, 100), 300.0)

	// 4. Checkpoint: drains the device, saves the upper half, the call
	// log, and the memory of active mallocs. The CUDA library itself is
	// NOT saved.
	var image bytes.Buffer
	stats, err := session.Checkpoint(&image)
	check(err)
	fmt.Printf("checkpoint: %d upper-half regions, %d KiB image\n",
		stats.Regions, image.Len()/1024)

	// 5. Simulated failure + restart: the old lower half is discarded, a
	// fresh CUDA library is brought up, the log is replayed so a, b, c
	// reappear at the same addresses, and their contents are refilled.
	check(session.Restart(bytes.NewReader(image.Bytes())))
	fmt.Printf("restarted (generation %d)\n", session.Generation())

	// 6. The application continues with the same handles and pointers:
	// c *= 2.
	check(rt.LaunchKernel(fat, "scale", kernels1D(n), crt.DefaultStream, c, kernels.F32Arg(2), n))
	check(rt.DeviceSynchronize())
	got := peek(rt, c, 100)
	fmt.Printf("after restart:   c[100] = %v (want %v)\n", got, 600.0)
	if got != 600 {
		log.Fatal("MISMATCH — checkpoint/restart was not transparent")
	}
	fmt.Println("OK: computation transparent across checkpoint/restart")
}

func kernels1D(n int) crt.LaunchConfig {
	return crt.LaunchConfig{Grid: crt.Dim3{X: (n + 255) / 256}, Block: crt.Dim3{X: 256}}
}

// peek reads one float32 element from device memory.
func peek(rt crt.Runtime, dev uint64, idx int) float32 {
	host, err := rt.AppAlloc(4)
	check(err)
	check(rt.Memcpy(host, dev+uint64(4*idx), 4, cuda.MemcpyDeviceToHost))
	v, err := crt.HostF32(rt, host, 1)
	check(err)
	return v[0]
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
