// UVM: host and device cooperating on Unified Virtual Memory across a
// checkpoint. The host writes managed memory directly, kernels fault the
// pages to the device, the host reads results back — the full UVM
// round trip the paper's CRAC supports without restrictions (unlike
// CRUM's read-modify-write-only shadow paging).
//
// Run with: go run ./examples/uvm
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	crac "repro"
	"repro/internal/crt"
	"repro/internal/kernels"
)

func main() {
	session, err := crac.New()
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	rt := session.Runtime()

	fat, err := rt.RegisterFatBinary(kernels.Module)
	check(err)
	for name, k := range kernels.Table() {
		check(rt.RegisterFunction(fat, name, k))
	}

	// One managed buffer shared by host and device at one address.
	const n = 1 << 15
	data, err := rt.MallocManaged(4 * n)
	check(err)
	sum, err := rt.MallocManaged(4)
	check(err)

	// Host initializes unified memory directly (pages host-resident).
	hv, err := crt.HostF32(rt, data, n)
	check(err)
	for i := range hv {
		hv[i] = 1
	}

	lc := crt.LaunchConfig{Grid: crt.Dim3{X: n / 256}, Block: crt.Dim3{X: 256}}
	// Device scales it (pages fault to the device)...
	check(rt.LaunchKernel(fat, "scale", lc, crt.DefaultStream, data, kernels.F32Arg(3), n))
	// ...and reduces into another managed word.
	check(rt.LaunchKernel(fat, "reduceSum", lc, crt.DefaultStream, data, sum, n))
	check(rt.DeviceSynchronize())

	// Host reads the result straight from unified memory (faults back).
	sv, err := crt.HostF32(rt, sum, 1)
	check(err)
	fmt.Printf("before checkpoint: sum = %v (want %v)\n", sv[0], float32(3*n))

	st := session.Library().UVM().Stats()
	fmt.Printf("UVM activity: %d device faults, %d host faults, %d KiB migrated\n",
		st.DeviceFaults, st.HostFaults, (st.BytesToDevice+st.BytesToHost)/1024)

	// Checkpoint + restart: managed memory travels via the active-malloc
	// payload; the fresh library re-registers the UVM regions.
	var image bytes.Buffer
	if _, err := session.Checkpoint(context.Background(), &image); err != nil {
		log.Fatal(err)
	}
	check(session.Restart(context.Background(), bytes.NewReader(image.Bytes())))
	fmt.Printf("restarted (generation %d)\n", session.Generation())

	// Host modifies unified memory again, device consumes it again: the
	// full UVM interplay keeps working after restart.
	hv, err = crt.HostF32(rt, data, n)
	check(err)
	for i := range hv {
		hv[i] += 1 // host writes: 3 -> 4
	}
	check(rt.LaunchKernel(fat, "reduceSum", lc, crt.DefaultStream, data, sum, n))
	check(rt.DeviceSynchronize())
	sv, err = crt.HostF32(rt, sum, 1)
	check(err)
	fmt.Printf("after restart:   sum = %v (want %v)\n", sv[0], float32(4*n))
	if sv[0] != 4*n {
		log.Fatal("MISMATCH — UVM state lost across checkpoint")
	}
	fmt.Println("OK: UVM fully functional across checkpoint/restart")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
