// Streams: a 128-stream pipeline (the V100's concurrent-kernel maximum)
// checkpointed mid-flight. Demonstrates the paper's headline stream
// support: the checkpoint drains all 128 stream queues, and the restart
// recreates every stream so the pipeline continues where it left off.
//
// Run with: go run ./examples/streams
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	crac "repro"
	"repro/internal/crt"
	"repro/internal/kernels"
)

const (
	nStreams = 128
	chunk    = 1 << 12 // float32 elements per stream
	rounds   = 8
)

func main() {
	session, err := crac.New()
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	rt := session.Runtime()

	fat, err := rt.RegisterFatBinary(kernels.Module)
	check(err)
	for name, k := range kernels.Table() {
		check(rt.RegisterFunction(fat, name, k))
	}

	// One device buffer partitioned across 128 streams.
	total := nStreams * chunk
	data, err := rt.Malloc(4 * uint64(total))
	check(err)
	streams := make([]crt.StreamHandle, nStreams)
	for i := range streams {
		streams[i], err = rt.StreamCreate()
		check(err)
	}
	fmt.Printf("created %d concurrent streams\n", nStreams)

	lc := crt.LaunchConfig{Grid: crt.Dim3{X: chunk / 256}, Block: crt.Dim3{X: 256}}
	check(rt.Memset(data, 0, 4*uint64(total)))

	runRound := func(alpha float32) {
		for s := 0; s < nStreams; s++ {
			off := data + uint64(4*s*chunk)
			// Each stream increments its chunk: x = x*1 + alpha via
			// fill+axpy-style kernels kept simple with scale/fill.
			check(rt.LaunchKernel(fat, "fill", lc, streams[s], off, kernels.F32Arg(alpha), chunk))
		}
	}

	// First half of the pipeline.
	for r := 0; r < rounds/2; r++ {
		runRound(float32(r + 1))
	}
	// Checkpoint while all 128 streams have work in flight: the drain
	// inside the checkpoint waits for every queue.
	var image bytes.Buffer
	if _, err := session.Checkpoint(context.Background(), &image); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed mid-pipeline with %d streams live (image %d KiB)\n",
		nStreams, image.Len()/1024)
	check(session.Restart(context.Background(), bytes.NewReader(image.Bytes())))
	fmt.Println("restarted: all 128 streams recreated")

	// Second half continues on the SAME stream handles.
	for r := rounds / 2; r < rounds; r++ {
		runRound(float32(r + 1))
	}
	for _, s := range streams {
		check(rt.StreamSynchronize(s))
	}

	// Verify: last round wrote `rounds` everywhere.
	host, err := rt.AppAlloc(4 * uint64(total))
	check(err)
	check(rt.Memcpy(host, data, 4*uint64(total), crt.MemcpyDeviceToHost))
	hv, err := crt.HostF32(rt, host, total)
	check(err)
	for i, v := range hv {
		if v != rounds {
			log.Fatalf("data[%d] = %v, want %v", i, v, rounds)
		}
	}
	fmt.Printf("OK: %d elements correct after ckpt/restart across %d streams\n", total, nStreams)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
