package crac

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/dmtcp"
)

// Verify re-checks an opened image's integrity: every per-shard
// content hash (for an unmaterialized delta), every region payload
// length, and — when the image carries a CUDA call log — that the log
// still decodes. Failures classify as ErrCorruptImage (recorded hashes
// no longer match) or ErrBadImage (structural inconsistency).
//
// ReadImage already enforces the stream-level checks (trailer
// checksum, shard hashes) while parsing, so for a freshly-opened image
// Verify mostly re-confirms; its value is images held in memory, and
// the uniform entry point VerifyChain and Scrub build on.
func (im *Image) Verify(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := im.img.VerifyContent(); err != nil {
		return err
	}
	if im.img.Complete() {
		if _, err := im.decodeLog(); err != nil {
			// The section bytes passed their hashes but the log no
			// longer parses: the image cannot be restored, and the
			// damage is to content, not structure.
			return fmt.Errorf("%w: %v", ErrCorruptImage, err)
		}
	}
	return nil
}

// quarantineSuffix marks images Scrub moved aside. Quarantined names
// are invisible to chain resolution (nothing names a parent with the
// suffix) and skipped by later scrubs and the Supervisor's candidate
// scan.
const quarantineSuffix = "~quarantined"

// Quarantined reports whether a store name is a quarantined image
// (moved aside by Scrub).
func Quarantined(name string) bool {
	return strings.HasSuffix(name, quarantineSuffix)
}

// VerifyChain verifies the named image and, for a v3 delta, every
// ancestor down to its base: each member must read back intact
// (trailer checksum, per-shard hashes), each parent link must resolve,
// and each recorded parent identity must match the parent image
// actually found under that name (catching a regenerated parent whose
// name still matches). It returns the chain's names, tip first, ending
// at the base.
//
// The first failure aborts the walk: the returned error classifies it
// (ErrCorruptImage, ErrBadImage, ErrImageNotFound, ErrDeltaChain) and
// the returned names cover the members verified before it.
func VerifyChain(ctx context.Context, store Store, name string) ([]string, error) {
	var chain []string
	seen := make(map[string]bool)
	var childParentID uint64
	cur := name
	for {
		if err := ctx.Err(); err != nil {
			return chain, err
		}
		if seen[cur] || len(chain) > maxLazyChainDepth {
			return chain, fmt.Errorf("%w: broken lineage at %q", ErrDeltaChain, cur)
		}
		seen[cur] = true
		img, err := readStoredImage(ctx, store, cur)
		if err != nil {
			if len(chain) > 0 {
				err = fmt.Errorf("%w: parent %q: %w", ErrDeltaChain, cur, err)
			}
			return chain, err
		}
		if err := img.VerifyContent(); err != nil {
			return chain, fmt.Errorf("image %q: %w", cur, err)
		}
		if childParentID != 0 && (img.Delta == nil || img.Delta.ID() != childParentID) {
			return chain, fmt.Errorf("%w: image %q is not the recorded parent (identity mismatch)", ErrDeltaChain, cur)
		}
		chain = append(chain, cur)
		if img.Delta == nil || img.Delta.Parent == "" {
			return chain, nil
		}
		childParentID = img.Delta.ParentID()
		cur = img.Delta.Parent
	}
}

// readStoredImage reads and parses one stored image without resolving
// its chain.
func readStoredImage(ctx context.Context, store Store, name string) (*dmtcp.Image, error) {
	rc, err := store.Get(ctx, name)
	if err != nil {
		return nil, wrapCancelled(err)
	}
	img, err := dmtcp.ReadImage(rc)
	rc.Close()
	if err != nil {
		return nil, err
	}
	return img, nil
}

// ScrubIssue is one image Scrub found damaged.
type ScrubIssue struct {
	Name string
	Err  error
}

// ScrubReport summarizes one Scrub pass.
type ScrubReport struct {
	// Intact images passed verification and have intact ancestry.
	Intact []string
	// Corrupt images failed verification themselves.
	Corrupt []ScrubIssue
	// Condemned images are intact deltas whose ancestry is broken — a
	// corrupt, missing, or identity-mismatched ancestor makes them
	// unrestorable, so they count as casualties of their ancestor.
	Condemned []string
	// Quarantined lists the images moved aside (renamed with
	// quarantineSuffix) by this pass — the corrupt and condemned ones,
	// minus any whose quarantine itself failed.
	Quarantined []string
}

// Scrub verifies every image in the store and quarantines the damaged
// ones: each corrupt image — and every delta whose ancestry runs
// through one (lineage-aware: a corrupt base condemns its deltas) — is
// renamed aside with quarantineSuffix so chain resolution, retention,
// and the Supervisor never trip over it, while the bytes stay
// available for forensics. Already-quarantined images are skipped.
// Best-effort like DirStore retention: an image that cannot be moved
// is reported but left in place. Single-slot stores (FileStore) verify
// but never quarantine — the slot's image is all there is.
func Scrub(ctx context.Context, store Store) (*ScrubReport, error) {
	names, err := store.List(ctx)
	if err != nil {
		return nil, wrapCancelled(err)
	}
	rep := &ScrubReport{}
	type member struct {
		parent   string
		id       uint64
		parentID uint64
		corrupt  bool
	}
	members := make(map[string]*member)
	for _, name := range names {
		if Quarantined(name) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		m := &member{}
		img, err := readStoredImage(ctx, store, name)
		if err == nil {
			err = img.VerifyContent()
		}
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return rep, wrapCancelled(err)
			}
			m.corrupt = true
			rep.Corrupt = append(rep.Corrupt, ScrubIssue{Name: name, Err: err})
		} else if img.Delta != nil {
			m.parent = img.Delta.Parent
			m.id = img.Delta.ID()
			m.parentID = img.Delta.ParentID()
		}
		members[name] = m
	}

	// Lineage pass: an intact delta is condemned when any hop of its
	// ancestry is corrupt, missing, identity-mismatched, or cyclic.
	for name, m := range members {
		if m.corrupt {
			continue
		}
		broken := false
		cur, wantID := m.parent, m.parentID
		for hops := 0; cur != ""; hops++ {
			p, ok := members[cur]
			if hops >= maxLineageHops || !ok || p.corrupt || (wantID != 0 && p.id != wantID) {
				broken = true
				break
			}
			cur, wantID = p.parent, p.parentID
		}
		if broken {
			rep.Condemned = append(rep.Condemned, name)
		} else {
			rep.Intact = append(rep.Intact, name)
		}
	}
	// The member map randomized the order; reports are deterministic.
	sort.Strings(rep.Intact)
	sort.Strings(rep.Condemned)

	if singleImageStore(store) {
		return rep, nil
	}
	quarantine := func(name string) {
		src, err := store.Get(ctx, name)
		if err != nil {
			return
		}
		err = store.Put(ctx, name+quarantineSuffix, func(w io.Writer) error {
			_, cerr := io.Copy(w, src)
			return cerr
		})
		src.Close()
		if err != nil {
			return
		}
		if store.Delete(ctx, name) == nil {
			rep.Quarantined = append(rep.Quarantined, name)
		}
	}
	for _, issue := range rep.Corrupt {
		quarantine(issue.Name)
	}
	for _, name := range rep.Condemned {
		quarantine(name)
	}
	return rep, nil
}

// RepairReport summarizes one RepairChain call.
type RepairReport struct {
	// Intact: the chain verified end to end; nothing was repaired.
	Intact bool
	// Tip names the newest verified image after the repair: the
	// original tip (Intact), a fresh re-checkpoint (Rebased != ""), or
	// the newest intact ancestor the chain fell back to.
	Tip string
	// Rebased names the re-checkpoint written from the live session,
	// when one was taken.
	Rebased string
	// Broken lists the chain members skipped as corrupt or unreachable.
	Broken []string
}

// RepairChain restores a usable checkpoint lineage after corruption.
// If the chain under tip verifies end to end, it reports Intact. If
// sess is non-nil (a live session whose state supersedes the stored
// chain), the repair re-checkpoints: the session's incremental lineage
// is rebased (Session.Rebase) so the next image is a self-contained
// base, written as tip + "-rebase" (suffixed further if taken) and
// verified — the broken chain stays in place for Scrub to quarantine.
// With no session, the repair falls back down the stored lineage to
// the newest ancestor whose own chain verifies, reporting it as the
// new Tip. When nothing intact remains, it returns an error wrapping
// ErrCorruptImage.
func RepairChain(ctx context.Context, store Store, tip string, sess *Session) (*RepairReport, error) {
	if _, err := VerifyChain(ctx, store, tip); err == nil {
		return &RepairReport{Intact: true, Tip: tip}, nil
	}
	rep := &RepairReport{}
	if sess != nil {
		sess.Rebase()
		name := tip + "-rebase"
		if existing, err := store.List(ctx); err == nil {
			taken := make(map[string]bool, len(existing))
			for _, n := range existing {
				taken[n] = true
			}
			for i := 2; taken[name]; i++ {
				name = fmt.Sprintf("%s-rebase%d", tip, i)
			}
		}
		if _, err := sess.CheckpointTo(ctx, store, name); err != nil {
			return nil, fmt.Errorf("crac: repair re-checkpoint: %w", err)
		}
		if _, err := VerifyChain(ctx, store, name); err != nil {
			return nil, fmt.Errorf("crac: repair re-checkpoint failed verification: %w", err)
		}
		rep.Rebased, rep.Tip = name, name
		return rep, nil
	}

	// No live session: fall back down the stored lineage. Parent names
	// come from the header-only meta read, which usually survives
	// payload corruption; a member whose header is unreadable ends the
	// walk.
	cur := tip
	seen := make(map[string]bool)
	for hops := 0; cur != "" && hops < maxLineageHops && !seen[cur]; hops++ {
		seen[cur] = true
		if _, err := VerifyChain(ctx, store, cur); err == nil {
			rep.Tip = cur
			return rep, nil
		}
		rep.Broken = append(rep.Broken, cur)
		rc, err := store.Get(ctx, cur)
		if err != nil {
			break
		}
		meta, err := dmtcp.ReadImageMeta(rc)
		rc.Close()
		if err != nil {
			break
		}
		cur = meta.Parent
	}
	return nil, fmt.Errorf("%w: no intact ancestor of %q", ErrCorruptImage, tip)
}
