package crac

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/crt"
)

// imageSession runs a recognizable workload and checkpoints it under
// the requested image version, returning the raw image bytes.
func imageBytes(t *testing.T, version int) []byte {
	t.Helper()
	s, err := New(WithImageVersion(version))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rt := s.Runtime()
	const n = 1024
	fat, da, db, dc, _ := setupVecAdd(t, rt, n)
	cfg := crt.LaunchConfig{Grid: crt.Dim3{X: n / 256}, Block: crt.Dim3{X: 256}}
	if err := rt.LaunchKernel(fat, "vecAdd", cfg, crt.DefaultStream, da, db, dc, n); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.StreamCreate(); err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	if _, err := s.Checkpoint(context.Background(), &img); err != nil {
		t.Fatal(err)
	}
	return img.Bytes()
}

// TestOpenImageBothVersions opens a v1 and a v2 image without restoring
// and checks the Info/Log surface reports the same state for both.
func TestOpenImageBothVersions(t *testing.T) {
	for _, version := range []int{1, 2} {
		img, err := OpenImage(bytes.NewReader(imageBytes(t, version)))
		if err != nil {
			t.Fatalf("OpenImage v%d: %v", version, err)
		}
		info := img.Info()
		if info.Version != version {
			t.Fatalf("Info.Version = %d, want %d", info.Version, version)
		}
		if info.Gzip {
			t.Fatalf("v%d: unexpected gzip flag", version)
		}
		if len(info.Regions) == 0 || info.RegionBytes == 0 {
			t.Fatalf("v%d: no regions in info: %+v", version, info)
		}
		var names []string
		for _, s := range info.Sections {
			names = append(names, s.Name)
		}
		if !strings.Contains(strings.Join(names, ","), "crac.log") {
			t.Fatalf("v%d: missing crac.log section in %v", version, names)
		}

		lg, err := img.Log()
		if err != nil {
			t.Fatalf("v%d Log: %v", version, err)
		}
		if lg == nil {
			t.Fatalf("v%d: no log summary", version)
		}
		if lg.Device.Buffers != 3 {
			t.Fatalf("v%d: active device buffers = %d, want 3", version, lg.Device.Buffers)
		}
		if lg.Device.Bytes != 3*1024*4 {
			t.Fatalf("v%d: active device bytes = %d", version, lg.Device.Bytes)
		}
		if lg.Streams != 1 {
			t.Fatalf("v%d: streams = %d, want 1", version, lg.Streams)
		}
		if len(lg.Modules) != 1 || lg.Modules[0].Module != "vectest" || lg.Modules[0].Kernels != 2 {
			t.Fatalf("v%d: modules = %+v", version, lg.Modules)
		}
		if lg.Entries == 0 {
			t.Fatalf("v%d: empty log", version)
		}

		entries, err := img.LogEntries()
		if err != nil || len(entries) != lg.Entries {
			t.Fatalf("v%d: LogEntries = %d entries, %v (want %d)", version, len(entries), err, lg.Entries)
		}
	}
}

func TestOpenImageGarbage(t *testing.T) {
	_, err := OpenImage(bytes.NewReader([]byte("definitely not an image")))
	if !errors.Is(err, ErrBadImage) {
		t.Fatalf("OpenImage(garbage) = %v, want ErrBadImage", err)
	}
	if errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("garbage misclassified as unsupported version: %v", err)
	}
}

func TestOpenImageUnsupportedVersion(t *testing.T) {
	// A CRACIMG magic with a future version digit: recognizably ours,
	// but not a format this build speaks.
	_, err := OpenImage(bytes.NewReader([]byte("CRACIMG9........")))
	if !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("OpenImage(v9) = %v, want ErrUnsupportedVersion", err)
	}
	if errors.Is(err, ErrBadImage) {
		t.Fatalf("unsupported version misclassified as bad image: %v", err)
	}
}

// TestRestoreFromStoreRoundTrip drives the full store-based
// cross-process flow: checkpoint into a DirStore, open the image for
// inspection, then RestoreFrom with a KernelRegistry.
func TestRestoreFromStoreRoundTrip(t *testing.T) {
	ctx := context.Background()
	store, err := NewDirStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}

	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	rt := s.Runtime()
	const n = 256
	fat, da, db, dc, _ := setupVecAdd(t, rt, n)
	cfg := crt.LaunchConfig{Grid: crt.Dim3{X: 1}, Block: crt.Dim3{X: 256}}
	if err := rt.LaunchKernel(fat, "vecAdd", cfg, crt.DefaultStream, da, db, dc, n); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CheckpointTo(ctx, store, "gen0"); err != nil {
		t.Fatalf("CheckpointTo: %v", err)
	}
	s.Close()

	// Inspect without restoring.
	img, err := OpenImageFrom(ctx, store, "gen0")
	if err != nil {
		t.Fatalf("OpenImageFrom: %v", err)
	}
	if lg, err := img.Log(); err != nil || lg == nil || lg.Device.Buffers != 3 {
		t.Fatalf("image log = %+v, %v", lg, err)
	}

	// A brand-new process restores from the store, resolving kernels
	// from its own registry.
	s2, err := RestoreFrom(ctx, store, "gen0",
		WithKernels(NewKernelRegistry().AddTable("vectest", vecAddKernels)))
	if err != nil {
		t.Fatalf("RestoreFrom: %v", err)
	}
	defer s2.Close()
	rt2 := s2.Runtime()
	host, err := rt2.AppAlloc(n * 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt2.Memcpy(host, dc, n*4, crt.MemcpyDeviceToHost); err != nil {
		t.Fatalf("Memcpy in restored process: %v", err)
	}
	hv, err := crt.HostF32(rt2, host, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if hv[i] != float32(2*i) {
			t.Fatalf("restored c[%d] = %v, want %v", i, hv[i], float32(2*i))
		}
	}

	// RestoreFrom with a missing name classifies as ErrImageNotFound.
	if _, err := RestoreFrom(ctx, store, "genX"); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("RestoreFrom missing = %v, want ErrImageNotFound", err)
	}
}

func TestKernelRegistry(t *testing.T) {
	reg := NewKernelRegistry().
		AddTable("mod1", vecAddKernels).
		Add("mod2", "k", vecAddKernels["scale"])
	mods := reg.Modules()
	if len(mods) != 2 {
		t.Fatalf("Modules = %v", mods)
	}
	// WithKernels snapshots: mutating the registry afterwards must not
	// affect an already-built session's resolution set.
	st := resolve([]Option{WithKernels(reg)})
	reg.Add("mod3", "late", vecAddKernels["scale"])
	if len(st.kernels.modules) != 2 {
		t.Fatalf("WithKernels did not snapshot the registry")
	}
}
