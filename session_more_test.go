package crac

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/addrspace"
	"repro/internal/crt"
	"repro/internal/dmtcp"
)

func TestMultipleCheckpointRestartGenerations(t *testing.T) {
	s, err := NewSession(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rt := s.Runtime()
	const n = 512
	fat, da, db, dc, host := setupVecAdd(t, rt, n)
	cfg := crt.LaunchConfig{Grid: crt.Dim3{X: 2}, Block: crt.Dim3{X: 256}}

	// Three checkpoint/restart cycles, each advancing the computation.
	for gen := 1; gen <= 3; gen++ {
		if err := rt.LaunchKernel(fat, "vecAdd", cfg, crt.DefaultStream, da, db, dc, n); err != nil {
			t.Fatalf("gen %d launch: %v", gen, err)
		}
		var img bytes.Buffer
		if _, err := s.Checkpoint(context.Background(), &img); err != nil {
			t.Fatalf("gen %d checkpoint: %v", gen, err)
		}
		if err := s.Restart(context.Background(), bytes.NewReader(img.Bytes())); err != nil {
			t.Fatalf("gen %d restart: %v", gen, err)
		}
		if s.Generation() != gen {
			t.Fatalf("generation = %d, want %d", s.Generation(), gen)
		}
	}
	// Still correct after three incarnations: dc = da + db = 2i.
	if err := rt.Memcpy(host, dc, n*4, crt.MemcpyDeviceToHost); err != nil {
		t.Fatal(err)
	}
	hv, err := crt.HostF32(rt, host, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if hv[i] != float32(2*i) {
			t.Fatalf("after 3 generations c[%d] = %v, want %v", i, hv[i], float32(2*i))
		}
	}
}

func TestRestartFromCorruptedImageFails(t *testing.T) {
	s, err := NewSession(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Runtime().Malloc(4096); err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	if _, err := s.Checkpoint(context.Background(), &img); err != nil {
		t.Fatal(err)
	}
	// Truncation anywhere in the image must be detected, never silently
	// restored.
	b := img.Bytes()
	for _, cut := range []int{4, len(b) / 2, len(b) - 1} {
		if err := s.Restart(context.Background(), bytes.NewReader(b[:cut])); err == nil {
			t.Fatalf("restart from %d-byte prefix succeeded", cut)
		}
	}
	// Bit-flip in the magic.
	bad := append([]byte(nil), b...)
	bad[0] ^= 0xFF
	if err := s.Restart(context.Background(), bytes.NewReader(bad)); err == nil {
		t.Fatal("restart from bad magic succeeded")
	}
	// The session is still usable after rejected restarts (the old lower
	// half was only torn down for images that parse).
	if _, err := s.Runtime().Malloc(4096); err != nil {
		t.Fatalf("session unusable after rejected restart: %v", err)
	}
}

func TestCheckpointFileAndRestartFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.img")
	s, err := NewSession(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rt := s.Runtime()
	d, err := rt.Malloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Memset(d, 0x3C, 64<<10); err != nil {
		t.Fatal(err)
	}
	// Host-side application state, so the image has upper-half regions.
	if _, err := rt.AppAlloc(4096); err != nil {
		t.Fatal(err)
	}
	size, stats, err := s.CheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 || stats.Regions == 0 {
		t.Fatalf("size=%d stats=%+v", size, stats)
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Size() != size {
		t.Fatalf("file size %v vs reported %d (%v)", fi.Size(), size, err)
	}
	if err := s.RestartFile(path); err != nil {
		t.Fatal(err)
	}
	// Contents restored.
	host, _ := rt.AppAlloc(64 << 10)
	if err := rt.Memcpy(host, d, 64<<10, crt.MemcpyDeviceToHost); err != nil {
		t.Fatal(err)
	}
	b, err := rt.HostAccess(host, 64<<10, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range b {
		if v != 0x3C {
			t.Fatalf("restored byte %#x", v)
		}
	}
}

func TestSessionAsCoordinatorMember(t *testing.T) {
	coord := dmtcp.NewCoordinator()
	var sessions []*Session
	for i := 0; i < 3; i++ {
		s, err := NewSession(Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Runtime().Malloc(4096); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Runtime().AppAlloc(4096); err != nil {
			t.Fatal(err)
		}
		coord.Add(i, s)
		sessions = append(sessions, s)
	}
	var bufs [3]bytes.Buffer
	err := coord.CheckpointAll(func(rank int) (io.WriteCloser, error) {
		return nopWC{&bufs[rank]}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range bufs {
		img, err := dmtcp.ReadImage(bytes.NewReader(bufs[i].Bytes()))
		if err != nil {
			t.Fatalf("rank %d image: %v", i, err)
		}
		if len(img.Regions) == 0 {
			t.Fatalf("rank %d image empty", i)
		}
	}
	_ = sessions
}

type nopWC struct{ io.Writer }

func (nopWC) Close() error { return nil }

func TestLowerHalfExcludedFromImage(t *testing.T) {
	// DESIGN.md invariant 4: no lower-half bytes in the image. The lower
	// half includes the device arena; fill it with a marker and verify
	// the marker only appears in the devmem payload section (the drained
	// active mallocs), never as a region.
	s, err := NewSession(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rt := s.Runtime()
	d, _ := rt.Malloc(4096)
	if err := rt.Memset(d, 0xEE, 4096); err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	if _, err := s.Checkpoint(context.Background(), &img); err != nil {
		t.Fatal(err)
	}
	parsed, err := dmtcp.ReadImage(bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	lw := s.Space().LowerWindow()
	uw := s.Space().UpperWindow()
	for _, r := range parsed.Regions {
		if r.Start >= lw.Start && r.Start < lw.End {
			t.Fatalf("lower-half region %+v leaked into the image", r)
		}
		if r.Start < uw.Start || r.Start >= uw.End {
			t.Fatalf("region %+v outside the upper window", r)
		}
	}
	_ = addrspace.HalfUpper
}

func TestSwitcherKinds(t *testing.T) {
	for _, k := range []SwitcherKind{SwitchSyscall, SwitchFSGSBase, SwitchNone} {
		sw := k.newSwitcher()
		sw.Enter()
		sw.Exit()
	}
}

// checkpointToBuffer is a small test helper: checkpoint s into a reader.
func checkpointToBuffer(t *testing.T, s *Session) *bytes.Reader {
	t.Helper()
	var img bytes.Buffer
	if _, err := s.Checkpoint(context.Background(), &img); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(img.Bytes())
}
