package crac

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
)

// makeImageBytes checkpoints a small session with the given options
// and returns the raw image bytes.
func makeImageBytes(t *testing.T, opts ...Option) []byte {
	t.Helper()
	s, err := New(append([]Option{WithWorkers(0), WithShardSize(32 << 10)}, opts...)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	rt := s.Runtime()
	d, err := rt.Malloc(96 << 10)
	if err != nil {
		t.Fatalf("Malloc: %v", err)
	}
	if err := rt.Memset(d, 0x5A, 96<<10); err != nil {
		t.Fatalf("Memset: %v", err)
	}
	var buf bytes.Buffer
	if _, err := s.Checkpoint(context.Background(), &buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	return buf.Bytes()
}

// makeDeltaBytes builds a base+delta chain in a MemStore and returns
// the delta's raw bytes plus the backing store (for lazy restores).
func makeDeltaBytes(t *testing.T) ([]byte, Store) {
	t.Helper()
	s, d := newChainSession(t)
	store := NewMemStore()
	buildChain(t, s, d, store, "base", "tip")
	rc, err := store.Get(context.Background(), "tip")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	return b, store
}

// wantAny reports whether err matches at least one of the sentinels.
func wantAny(err error, sentinels ...error) bool {
	for _, s := range sentinels {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}

// openCorrupt runs the given mutation over a copy of img and feeds the
// result to OpenImage.
func openCorrupt(img []byte, mutate func([]byte) []byte) error {
	b := mutate(append([]byte(nil), img...))
	_, err := OpenImage(bytes.NewReader(b))
	return err
}

func TestImageStructuralCorruption(t *testing.T) {
	type variant struct {
		name string
		img  []byte
	}
	variants := []variant{
		{"v1", makeImageBytes(t, WithImageVersion(1))},
		{"v1gzip", makeImageBytes(t, WithImageVersion(1), WithGzip(1))},
		{"v2", makeImageBytes(t, WithImageVersion(2))},
		{"v3base", makeImageBytes(t, WithIncremental(4))},
	}

	type mutation struct {
		name      string
		mutate    func([]byte) []byte
		sentinels []error // any of these satisfies the case
	}
	mutations := []mutation{
		{
			name:      "magic",
			mutate:    func(b []byte) []byte { b[0] ^= 0xFF; return b },
			sentinels: []error{ErrBadImage},
		},
		{
			name:      "version",
			mutate:    func(b []byte) []byte { b[7] = '9'; return b },
			sentinels: []error{ErrUnsupportedVersion},
		},
		{
			name: "truncated-header",
			mutate: func(b []byte) []byte {
				return b[:9]
			},
			sentinels: []error{ErrBadImage, ErrCorruptImage},
		},
		{
			name: "truncated-mid",
			mutate: func(b []byte) []byte {
				return b[:len(b)/2]
			},
			// v1+gzip has no trailer: the truncation surfaces as a
			// structural parse error instead.
			sentinels: []error{ErrCorruptImage, ErrBadImage},
		},
		{
			name: "truncated-tail",
			mutate: func(b []byte) []byte {
				return b[:len(b)-1]
			},
			sentinels: []error{ErrCorruptImage, ErrBadImage},
		},
		{
			name: "payload-flip",
			mutate: func(b []byte) []byte {
				b[len(b)/2] ^= 0x10
				return b
			},
			sentinels: []error{ErrCorruptImage, ErrBadImage},
		},
		{
			name: "tail-flip",
			mutate: func(b []byte) []byte {
				b[len(b)-1] ^= 0x10
				return b
			},
			sentinels: []error{ErrCorruptImage, ErrBadImage},
		},
		{
			name: "appended-garbage",
			mutate: func(b []byte) []byte {
				return append(b, 0xDE, 0xAD)
			},
			sentinels: []error{ErrCorruptImage, ErrBadImage},
		},
	}

	for _, v := range variants {
		for _, m := range mutations {
			t.Run(v.name+"/"+m.name, func(t *testing.T) {
				err := openCorrupt(v.img, m.mutate)
				if err == nil {
					t.Fatalf("%s/%s: corruption accepted", v.name, m.name)
				}
				if !wantAny(err, m.sentinels...) {
					t.Fatalf("%s/%s: err = %v, want one of %v", v.name, m.name, err, m.sentinels)
				}
			})
		}
	}
}

// TestImageSingleBitSweep flips one bit at a stride of offsets across
// each format and requires every flip to be rejected by open, restore,
// or Verify — no silent acceptance of corrupt state.
func TestImageSingleBitSweep(t *testing.T) {
	variants := map[string][]byte{
		"v1": makeImageBytes(t, WithImageVersion(1)),
		"v2": makeImageBytes(t, WithImageVersion(2)),
		"v3": makeImageBytes(t, WithIncremental(4)),
	}
	ctx := context.Background()
	for name, img := range variants {
		stride := len(img)/97 + 1
		for off := 0; off < len(img); off += stride {
			b := append([]byte(nil), img...)
			b[off] ^= 1 << (off % 8)
			im, err := OpenImage(bytes.NewReader(b))
			if err != nil {
				continue // rejected at parse: good
			}
			if err := im.Verify(ctx); err != nil {
				continue // rejected by integrity check: good
			}
			if _, err := RestoreImage(ctx, im); err != nil {
				continue // rejected at restore: good
			}
			t.Fatalf("%s: flip at offset %d (bit %d) accepted end to end", name, off, off%8)
		}
	}
}

// TestDeltaCorruptionEagerAndLazy corrupts a delta tip and asserts
// both restore paths reject it with ErrCorruptImage.
func TestDeltaCorruptionEagerAndLazy(t *testing.T) {
	tip, store := makeDeltaBytes(t)
	ctx := context.Background()

	b := append([]byte(nil), tip...)
	b[len(b)/2] ^= 0x08
	if err := store.Put(ctx, "tip", func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	if _, err := RestoreFrom(ctx, store, "tip"); !wantAny(err, ErrCorruptImage, ErrBadImage) {
		t.Fatalf("eager RestoreFrom = %v, want corruption rejected", err)
	}

	s, err := New(WithWorkers(0), WithLazyRestart())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	err = s.RestartFrom(ctx, store, "tip")
	if err == nil {
		// Lazy restart may defer payload validation to the drain: wait
		// for it and demand the drain failed.
		if rs, aerr := s.RestartAsync(ctx, store, "tip"); aerr == nil {
			_, err = rs.Wait()
		}
	}
	if !wantAny(err, ErrCorruptImage, ErrBadImage) {
		t.Fatalf("lazy restart = %v, want corruption rejected", err)
	}
}

// TestLegacyTrailerlessImageStillReadable pins the compatibility rule:
// a pre-trailer image (the bytes of a v2 image minus its 24-byte
// trailer) opens fine, reports Verified=false, and restores.
func TestLegacyTrailerlessImageStillReadable(t *testing.T) {
	img := makeImageBytes(t, WithImageVersion(2))
	legacy := img[:len(img)-24]
	im, err := OpenImage(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("OpenImage(legacy): %v", err)
	}
	if im.Info().Verified {
		t.Fatal("trailerless image claims Verified")
	}
	if err := im.Verify(context.Background()); err != nil {
		t.Fatalf("Verify(legacy): %v", err)
	}
	s, err := RestoreImage(context.Background(), im)
	if err != nil {
		t.Fatalf("RestoreImage(legacy): %v", err)
	}
	s.Close()
}
