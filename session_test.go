package crac

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/cracrt"
	"repro/internal/crt"
	"repro/internal/cuda"
)

// vecAddKernels is a tiny fat-binary table used across session tests.
var vecAddKernels = map[string]cuda.Kernel{
	"vecAdd": func(ctx *cuda.DevCtx, cfg crt.LaunchConfig, args []uint64) {
		n := int(args[3])
		a := ctx.Float32s(args[0], n)
		b := ctx.Float32s(args[1], n)
		c := ctx.Float32s(args[2], n)
		for i := 0; i < n; i++ {
			c[i] = a[i] + b[i]
		}
	},
	"scale": func(ctx *cuda.DevCtx, cfg crt.LaunchConfig, args []uint64) {
		n := int(args[1])
		f := float32(args[2])
		x := ctx.Float32s(args[0], n)
		for i := 0; i < n; i++ {
			x[i] *= f
		}
	},
}

// setupVecAdd allocates and fills device inputs, returning pointers.
func setupVecAdd(t *testing.T, rt crt.Runtime, n int) (fat crt.FatBinHandle, da, db, dc, host uint64) {
	t.Helper()
	var err error
	fat, err = rt.RegisterFatBinary("vectest")
	if err != nil {
		t.Fatalf("RegisterFatBinary: %v", err)
	}
	for name, k := range vecAddKernels {
		if err := rt.RegisterFunction(fat, name, k); err != nil {
			t.Fatalf("RegisterFunction(%s): %v", name, err)
		}
	}
	bytesN := uint64(n) * 4
	if da, err = rt.Malloc(bytesN); err != nil {
		t.Fatalf("Malloc: %v", err)
	}
	if db, err = rt.Malloc(bytesN); err != nil {
		t.Fatalf("Malloc: %v", err)
	}
	if dc, err = rt.Malloc(bytesN); err != nil {
		t.Fatalf("Malloc: %v", err)
	}
	if host, err = rt.AppAlloc(bytesN); err != nil {
		t.Fatalf("AppAlloc: %v", err)
	}
	hv, err := crt.HostF32(rt, host, n)
	if err != nil {
		t.Fatalf("HostF32: %v", err)
	}
	for i := range hv {
		hv[i] = float32(i)
	}
	if err := rt.Memcpy(da, host, bytesN, crt.MemcpyHostToDevice); err != nil {
		t.Fatalf("Memcpy H2D: %v", err)
	}
	if err := rt.Memcpy(db, host, bytesN, crt.MemcpyHostToDevice); err != nil {
		t.Fatalf("Memcpy H2D: %v", err)
	}
	return fat, da, db, dc, host
}

func TestSessionVectorAddNativeVsCRAC(t *testing.T) {
	for _, mode := range []string{"native", "crac"} {
		t.Run(mode, func(t *testing.T) {
			var rt crt.Runtime
			if mode == "native" {
				n, err := NewNative()
				if err != nil {
					t.Fatalf("NewNative: %v", err)
				}
				rt = n
			} else {
				s, err := NewSession(Config{})
				if err != nil {
					t.Fatalf("NewSession: %v", err)
				}
				defer s.Close()
				rt = s.Runtime()
			}
			const n = 1024
			fat, da, db, dc, host := setupVecAdd(t, rt, n)
			cfg := crt.LaunchConfig{Grid: crt.Dim3{X: 4}, Block: crt.Dim3{X: 256}}
			if err := rt.LaunchKernel(fat, "vecAdd", cfg, crt.DefaultStream, da, db, dc, n); err != nil {
				t.Fatalf("LaunchKernel: %v", err)
			}
			if err := rt.DeviceSynchronize(); err != nil {
				t.Fatalf("DeviceSynchronize: %v", err)
			}
			if err := rt.Memcpy(host, dc, n*4, crt.MemcpyDeviceToHost); err != nil {
				t.Fatalf("Memcpy D2H: %v", err)
			}
			hv, err := crt.HostF32(rt, host, n)
			if err != nil {
				t.Fatalf("HostF32: %v", err)
			}
			for i := 0; i < n; i++ {
				if hv[i] != float32(2*i) {
					t.Fatalf("c[%d] = %v, want %v", i, hv[i], float32(2*i))
				}
			}
		})
	}
}

func TestSessionCheckpointRestartTransparency(t *testing.T) {
	s, err := NewSession(Config{})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()
	rt := s.Runtime()

	const n = 2048
	fat, da, db, dc, host := setupVecAdd(t, rt, n)
	cfg := crt.LaunchConfig{Grid: crt.Dim3{X: 8}, Block: crt.Dim3{X: 256}}
	// First kernel before the checkpoint: dc = da + db.
	if err := rt.LaunchKernel(fat, "vecAdd", cfg, crt.DefaultStream, da, db, dc, n); err != nil {
		t.Fatalf("LaunchKernel: %v", err)
	}

	// Checkpoint mid-computation (the drain happens inside).
	var img bytes.Buffer
	st, err := s.Checkpoint(context.Background(), &img)
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if st.Regions == 0 || st.RegionBytes == 0 {
		t.Fatalf("checkpoint stats look empty: %+v", st)
	}

	// Simulated failure: restart from the image. The old lower half is
	// gone; the log replays against a fresh library.
	if err := s.Restart(context.Background(), bytes.NewReader(img.Bytes())); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if s.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", s.Generation())
	}

	// The application continues with the SAME handles and pointers:
	// scale dc by 3 and verify dc[i] == 3*(a[i]+b[i]) == 6i.
	if err := rt.LaunchKernel(fat, "scale", cfg, crt.DefaultStream, dc, n, 3); err != nil {
		t.Fatalf("LaunchKernel after restart: %v", err)
	}
	if err := rt.DeviceSynchronize(); err != nil {
		t.Fatalf("DeviceSynchronize after restart: %v", err)
	}
	if err := rt.Memcpy(host, dc, n*4, crt.MemcpyDeviceToHost); err != nil {
		t.Fatalf("Memcpy D2H after restart: %v", err)
	}
	hv, err := crt.HostF32(rt, host, n)
	if err != nil {
		t.Fatalf("HostF32: %v", err)
	}
	for i := 0; i < n; i++ {
		if hv[i] != float32(6*i) {
			t.Fatalf("after restart c[%d] = %v, want %v", i, hv[i], float32(6*i))
		}
	}
}

func TestSessionRestartPreservesStreamsAndEvents(t *testing.T) {
	s, err := NewSession(Config{})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()
	rt := s.Runtime()

	const n = 512
	fat, da, _, dc, host := setupVecAdd(t, rt, n)
	st1, err := rt.StreamCreate()
	if err != nil {
		t.Fatalf("StreamCreate: %v", err)
	}
	st2, err := rt.StreamCreate()
	if err != nil {
		t.Fatalf("StreamCreate: %v", err)
	}
	if err := rt.StreamDestroy(st1); err != nil {
		t.Fatalf("StreamDestroy: %v", err)
	}
	ev, err := rt.EventCreate()
	if err != nil {
		t.Fatalf("EventCreate: %v", err)
	}

	var img bytes.Buffer
	if _, err := s.Checkpoint(context.Background(), &img); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := s.Restart(context.Background(), bytes.NewReader(img.Bytes())); err != nil {
		t.Fatalf("Restart: %v", err)
	}

	// st2 and ev survive; st1 stays dead.
	cfg := crt.LaunchConfig{Grid: crt.Dim3{X: 2}, Block: crt.Dim3{X: 256}}
	if err := rt.LaunchKernel(fat, "scale", cfg, st2, da, n, 2); err != nil {
		t.Fatalf("LaunchKernel on restored stream: %v", err)
	}
	if err := rt.EventRecord(ev, st2); err != nil {
		t.Fatalf("EventRecord on restored event: %v", err)
	}
	if err := rt.EventSynchronize(ev); err != nil {
		t.Fatalf("EventSynchronize: %v", err)
	}
	if err := rt.StreamSynchronize(st2); err != nil {
		t.Fatalf("StreamSynchronize: %v", err)
	}
	if err := rt.LaunchKernel(fat, "scale", cfg, st1, da, n, 2); err == nil {
		t.Fatalf("launch on destroyed stream unexpectedly succeeded")
	}
	// New streams keep getting fresh handles after restart.
	st3, err := rt.StreamCreate()
	if err != nil {
		t.Fatalf("StreamCreate after restart: %v", err)
	}
	if st3 == st2 || st3 == st1 {
		t.Fatalf("handle reuse after restart: st3=%d", st3)
	}
	_ = dc
	_ = host
}

func TestCrossProcessRestore(t *testing.T) {
	s, err := NewSession(Config{})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	rt := s.Runtime()

	const n = 256
	fat, da, db, dc, _ := setupVecAdd(t, rt, n)
	cfg := crt.LaunchConfig{Grid: crt.Dim3{X: 1}, Block: crt.Dim3{X: 256}}
	if err := rt.LaunchKernel(fat, "vecAdd", cfg, crt.DefaultStream, da, db, dc, n); err != nil {
		t.Fatalf("LaunchKernel: %v", err)
	}
	// Stash the pointer table as the root blob, as a resumable app would.
	root := []byte{byte(da), byte(da >> 8)} // representative payload
	s.SetRootBlob(root)

	var img bytes.Buffer
	if _, err := s.Checkpoint(context.Background(), &img); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	s.Close()

	// A brand-new process restores from the image. It resolves kernels
	// from its own text segment (the exported kernel table).
	s2, err := Restore(context.Background(), bytes.NewReader(img.Bytes()),
		WithKernels(NewKernelRegistry().AddTable("vectest", vecAddKernels)))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer s2.Close()
	if got := s2.RootBlob(); !bytes.Equal(got, root) {
		t.Fatalf("root blob = %v, want %v", got, root)
	}
	// The restored device memory holds a+b at the original address dc.
	rt2 := s2.Runtime()
	host2, err := rt2.AppAlloc(n * 4)
	if err != nil {
		t.Fatalf("AppAlloc: %v", err)
	}
	if err := rt2.Memcpy(host2, dc, n*4, crt.MemcpyDeviceToHost); err != nil {
		t.Fatalf("Memcpy D2H in restored process: %v", err)
	}
	hv, err := crt.HostF32(rt2, host2, n)
	if err != nil {
		t.Fatalf("HostF32: %v", err)
	}
	for i := 0; i < n; i++ {
		if hv[i] != float32(2*i) {
			t.Fatalf("restored c[%d] = %v, want %v", i, hv[i], float32(2*i))
		}
	}
}

func TestASLRBreaksReplayDeterminism(t *testing.T) {
	// With ASLR on, the fresh lower half lands at different addresses
	// and the replay detects the mismatch — the reason CRAC calls
	// personality(ADDR_NO_RANDOMIZE) (Section 3.2.4).
	s, err := NewSession(Config{ASLR: true, ASLRSeed: 42})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()
	rt := s.Runtime()
	if _, err := rt.Malloc(1 << 20); err != nil {
		t.Fatalf("Malloc: %v", err)
	}
	var img bytes.Buffer
	if _, err := s.Checkpoint(context.Background(), &img); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	err = s.Restart(context.Background(), bytes.NewReader(img.Bytes()))
	if err == nil {
		t.Skip("ASLR happened to reproduce the layout; extremely unlikely but legal")
	}
	if !errors.Is(err, cracrt.ErrReplayMismatch) {
		t.Fatalf("Restart error = %v, want ErrReplayMismatch", err)
	}
}

func TestGzipImageRoundTrip(t *testing.T) {
	s, err := NewSession(Config{GzipImage: true})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()
	rt := s.Runtime()
	const n = 1024
	_, _, _, dc, _ := setupVecAdd(t, rt, n)
	var img bytes.Buffer
	if _, err := s.Checkpoint(context.Background(), &img); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := s.Restart(context.Background(), bytes.NewReader(img.Bytes())); err != nil {
		t.Fatalf("Restart from gzip image: %v", err)
	}
	_ = dc
}
