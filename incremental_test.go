package crac

// Acceptance tests for incremental checkpointing (ISSUE 3): a sparse
// workload's delta images must be ≥5× smaller than full v2 images, and
// a base + k deltas chain must restore byte-identically to a full
// checkpoint taken at the same point.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"testing"

	"repro/internal/addrspace"
	"repro/internal/crt"
)

const (
	incrHostBufs  = 16
	incrDevAllocs = 8
	incrBufSize   = 256 << 10
)

// incrWorkload is a deterministic sparse-update workload: a few MiB of
// upper-half (cudaHostAlloc) buffers, device allocations, and one
// managed buffer touched only during setup.
type incrWorkload struct {
	rt      crt.Runtime
	host    []uint64
	dev     []uint64
	managed uint64
}

func newIncrWorkload(t testing.TB, rt crt.Runtime) *incrWorkload {
	t.Helper()
	w := &incrWorkload{rt: rt}
	for i := 0; i < incrHostBufs; i++ {
		h, err := rt.HostAlloc(incrBufSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Memset(h, byte(i+1), incrBufSize); err != nil {
			t.Fatal(err)
		}
		w.host = append(w.host, h)
	}
	for i := 0; i < incrDevAllocs; i++ {
		d, err := rt.Malloc(incrBufSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Memset(d, byte(0x40+i), incrBufSize); err != nil {
			t.Fatal(err)
		}
		w.dev = append(w.dev, d)
	}
	m, err := rt.MallocManaged(incrBufSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Memset(m, 0x7F, incrBufSize); err != nil {
		t.Fatal(err)
	}
	w.managed = m
	return w
}

// step dirties one host buffer partially and one device allocation
// fully — well under 10% of the live regions/allocations.
func (w *incrWorkload) step(t testing.TB, round int) {
	t.Helper()
	if err := w.rt.Memset(w.host[round%incrHostBufs]+1024, byte(round), 64<<10); err != nil {
		t.Fatal(err)
	}
	if err := w.rt.Memset(w.dev[round%incrDevAllocs], byte(round+1), incrBufSize); err != nil {
		t.Fatal(err)
	}
}

// storeImageSize reads the named image back out of the store and counts
// its bytes.
func storeImageSize(t testing.TB, store Store, name string) int64 {
	t.Helper()
	rc, err := store.Get(context.Background(), name)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	n, err := io.Copy(io.Discard, rc)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestIncrementalPayloadReduction pins the acceptance bound: on a
// workload dirtying ≤10% of the live state per round, every delta image
// is at least 5× smaller than the full v2 image of the identical state.
func TestIncrementalPayloadReduction(t *testing.T) {
	full, err := New(WithShardSize(64 << 10))
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	incr, err := New(WithShardSize(64<<10), WithIncremental(8))
	if err != nil {
		t.Fatal(err)
	}
	defer incr.Close()
	wFull := newIncrWorkload(t, full.Runtime())
	wIncr := newIncrWorkload(t, incr.Runtime())

	ctx := context.Background()
	storeFull, storeIncr := NewMemStore(), NewMemStore()
	if _, err := full.CheckpointTo(ctx, storeFull, "gen0"); err != nil {
		t.Fatal(err)
	}
	stBase, err := incr.CheckpointTo(ctx, storeIncr, "gen0")
	if err != nil {
		t.Fatal(err)
	}
	if stBase.Delta {
		t.Fatal("first incremental checkpoint must be a base")
	}

	for round := 1; round <= 4; round++ {
		wFull.step(t, round)
		wIncr.step(t, round)
		name := fmt.Sprintf("gen%d", round)
		if _, err := full.CheckpointTo(ctx, storeFull, name); err != nil {
			t.Fatal(err)
		}
		st, err := incr.CheckpointTo(ctx, storeIncr, name)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Delta || st.DeltaDepth != round {
			t.Fatalf("round %d: expected delta depth %d, got %+v", round, round, st)
		}
		if ratio := st.DirtyRatio(); ratio > 0.10 {
			t.Fatalf("round %d: dirty ratio %.3f exceeds the sparse-workload bound", round, ratio)
		}
		fullSize := storeImageSize(t, storeFull, name)
		deltaSize := storeImageSize(t, storeIncr, name)
		if deltaSize*5 > fullSize {
			t.Fatalf("round %d: delta %d bytes vs full %d bytes — less than 5× reduction", round, deltaSize, fullSize)
		}
	}
}

// snapshotRegions reads every readable region of a session's space.
func snapshotRegions(t *testing.T, s *Session) map[uint64][]byte {
	t.Helper()
	out := make(map[uint64][]byte)
	space := s.Space()
	for _, ri := range space.Regions() {
		if ri.Prot&addrspace.ProtRead == 0 || ri.Len == 0 {
			continue
		}
		b := make([]byte, ri.Len)
		if err := space.ReadAt(ri.Start, b); err != nil {
			t.Fatalf("reading region %v: %v", ri, err)
		}
		out[ri.Start] = b
	}
	return out
}

// TestIncrementalChainRestoresByteIdentically proves base + k deltas
// restore to exactly the state a full checkpoint captures at the same
// point — both through a same-process Restart and a cross-process
// Restore.
func TestIncrementalChainRestoresByteIdentically(t *testing.T) {
	incr, err := New(WithShardSize(64<<10), WithIncremental(8))
	if err != nil {
		t.Fatal(err)
	}
	defer incr.Close()
	w := newIncrWorkload(t, incr.Runtime())

	ctx := context.Background()
	store := NewMemStore()
	tip := "gen0"
	if _, err := incr.CheckpointTo(ctx, store, tip); err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		w.step(t, round)
		tip = fmt.Sprintf("gen%d", round)
		if st, err := incr.CheckpointTo(ctx, store, tip); err != nil || !st.Delta {
			t.Fatalf("round %d: %v (delta=%v)", round, err, st.Delta)
		}
	}
	// Reference: a full, self-contained checkpoint of the same state
	// (plain Checkpoint writes outside the chain).
	var ref bytes.Buffer
	if _, err := incr.Checkpoint(ctx, &ref); err != nil {
		t.Fatal(err)
	}

	fromChain, err := RestoreFrom(ctx, store, tip)
	if err != nil {
		t.Fatalf("restoring the delta chain: %v", err)
	}
	defer fromChain.Close()
	fromFull, err := Restore(ctx, bytes.NewReader(ref.Bytes()))
	if err != nil {
		t.Fatalf("restoring the full image: %v", err)
	}
	defer fromFull.Close()

	chainSnap := snapshotRegions(t, fromChain)
	fullSnap := snapshotRegions(t, fromFull)
	if len(chainSnap) != len(fullSnap) {
		t.Fatalf("restored region sets differ: %d vs %d", len(chainSnap), len(fullSnap))
	}
	for start, b := range fullSnap {
		cb, ok := chainSnap[start]
		if !ok {
			t.Fatalf("chain restore is missing region %#x", start)
		}
		if !bytes.Equal(cb, b) {
			t.Fatalf("region %#x differs between chain and full restore", start)
		}
	}
	// Both restored sessions stay operational.
	if _, err := fromChain.Runtime().Malloc(4096); err != nil {
		t.Fatal(err)
	}
	if _, err := fromFull.Runtime().Malloc(4096); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalRotationAndRestartReset pins the chain policy: the
// chain rotates to a fresh base after the configured number of deltas,
// and a restart always breaks the chain.
func TestIncrementalRotationAndRestartReset(t *testing.T) {
	s, err := New(WithIncremental(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := newIncrWorkload(t, s.Runtime())
	ctx := context.Background()
	store := NewMemStore()

	wantDepths := []int{0, 1, 2, 0, 1}
	for i, want := range wantDepths {
		w.step(t, i)
		st, err := s.CheckpointTo(ctx, store, fmt.Sprintf("gen%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if st.DeltaDepth != want || st.Delta != (want > 0) {
			t.Fatalf("checkpoint %d: depth %d (delta=%v), want %d", i, st.DeltaDepth, st.Delta, want)
		}
	}
	if err := s.RestartFrom(ctx, store, "gen4"); err != nil {
		t.Fatal(err)
	}
	st, err := s.CheckpointTo(ctx, store, "after-restart")
	if err != nil {
		t.Fatal(err)
	}
	if st.Delta {
		t.Fatal("the first checkpoint after a restart must be a base")
	}
}

// TestBareDeltaRefusesRestore pins the failure mode: a delta opened
// outside its store cannot be restored and classifies as ErrDeltaChain.
func TestBareDeltaRefusesRestore(t *testing.T) {
	s, err := New(WithIncremental(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := newIncrWorkload(t, s.Runtime())
	ctx := context.Background()
	store := NewMemStore()
	if _, err := s.CheckpointTo(ctx, store, "base"); err != nil {
		t.Fatal(err)
	}
	w.step(t, 1)
	if _, err := s.CheckpointTo(ctx, store, "delta"); err != nil {
		t.Fatal(err)
	}
	rc, err := store.Get(ctx, "delta")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	img, err := OpenImage(rc)
	if err != nil {
		t.Fatalf("a bare delta must still parse for inspection: %v", err)
	}
	info := img.Info()
	if !info.Delta || info.Parent != "base" || info.Materialized {
		t.Fatalf("bare delta info wrong: %+v", info)
	}
	if err := s.RestartImage(ctx, img); !errors.Is(err, ErrDeltaChain) {
		t.Fatalf("restoring a bare delta: got %v, want ErrDeltaChain", err)
	}
}

// TestIncrementalNameReuseWritesBase pins the ancestor-overwrite guard:
// checkpointing to a name the live chain still depends on (the classic
// fixed-name pattern) must produce a self-contained base, never a delta
// that would orphan itself by replacing its own parent.
func TestIncrementalNameReuseWritesBase(t *testing.T) {
	s, err := New(WithIncremental(8))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := newIncrWorkload(t, s.Runtime())
	ctx := context.Background()
	store := NewMemStore()
	for i := 0; i < 3; i++ {
		w.step(t, i)
		st, err := s.CheckpointTo(ctx, store, "latest")
		if err != nil {
			t.Fatal(err)
		}
		if st.Delta {
			t.Fatalf("checkpoint %d to a reused name must be a base", i)
		}
	}
	restored, err := RestoreFrom(ctx, store, "latest")
	if err != nil {
		t.Fatal(err)
	}
	restored.Close()

	// Distinct names chain normally off the last base, and a name from
	// the live chain's ancestry again forces a base.
	w.step(t, 3)
	if st, err := s.CheckpointTo(ctx, store, "gen-a"); err != nil || !st.Delta || st.DeltaDepth != 1 {
		t.Fatalf("fresh name must chain off the base: %v (delta=%v depth=%d)", err, st.Delta, st.DeltaDepth)
	}
	w.step(t, 4)
	if st, err := s.CheckpointTo(ctx, store, "gen-b"); err != nil || !st.Delta || st.DeltaDepth != 2 {
		t.Fatalf("second fresh name must extend the chain: %v (delta=%v depth=%d)", err, st.Delta, st.DeltaDepth)
	}
	w.step(t, 5)
	if st, err := s.CheckpointTo(ctx, store, "gen-a"); err != nil || st.Delta {
		t.Fatalf("overwriting a chain ancestor must rotate to a base: %v (delta=%v)", err, st.Delta)
	}
	restored, err = RestoreFrom(ctx, store, "gen-a")
	if err != nil {
		t.Fatal(err)
	}
	restored.Close()
}

// TestIncrementalFileStoreAlwaysBase pins the single-slot store guard:
// a FileStore backs every name with one path, so an incremental session
// must write only self-contained base images there — a delta would
// overwrite its own parent.
func TestIncrementalFileStoreAlwaysBase(t *testing.T) {
	s, err := New(WithIncremental(8))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := newIncrWorkload(t, s.Runtime())
	ctx := context.Background()
	fs := NewFileStore(filepath.Join(t.TempDir(), "one.img"))
	for i := 0; i < 3; i++ {
		w.step(t, i)
		st, err := s.CheckpointTo(ctx, fs, fmt.Sprintf("gen%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if st.Delta {
			t.Fatalf("checkpoint %d to a FileStore must be a base", i)
		}
	}
	restored, err := RestoreFrom(ctx, fs, "gen2")
	if err != nil {
		t.Fatalf("FileStore image must stay restorable: %v", err)
	}
	restored.Close()
}

// TestStaleDeltaDetectsRewrittenParent pins the lineage identity check:
// when a chain ancestor's name is rebound to different content (a new
// base written over it), restoring an old delta that references the
// name must fail with ErrDeltaChain rather than silently mixing the
// old delta with the new parent's bytes.
func TestStaleDeltaDetectsRewrittenParent(t *testing.T) {
	s, err := New(WithIncremental(8))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := newIncrWorkload(t, s.Runtime())
	ctx := context.Background()
	store := NewMemStore()
	if _, err := s.CheckpointTo(ctx, store, "gen-a"); err != nil {
		t.Fatal(err)
	}
	w.step(t, 1)
	if st, err := s.CheckpointTo(ctx, store, "gen-b"); err != nil || !st.Delta {
		t.Fatalf("gen-b: %v (delta=%v)", err, st.Delta)
	}
	// Overwrite gen-a: the ancestor-name guard rotates this to a fresh
	// base, which replaces the content gen-b was written against.
	w.step(t, 2)
	if st, err := s.CheckpointTo(ctx, store, "gen-a"); err != nil || st.Delta {
		t.Fatalf("rewriting gen-a: %v (delta=%v)", err, st.Delta)
	}
	if _, err := OpenImageFrom(ctx, store, "gen-b"); !errors.Is(err, ErrDeltaChain) {
		t.Fatalf("stale delta against a rewritten parent: got %v, want ErrDeltaChain", err)
	}
	if _, err := RestoreFrom(ctx, store, "gen-b"); !errors.Is(err, ErrDeltaChain) {
		t.Fatalf("restore of a stale delta: got %v, want ErrDeltaChain", err)
	}
}
