package crac

// Acceptance tests for concurrent (snapshot-and-release) checkpointing
// (ISSUE 4): the stop-the-world window covers only drain + epoch cut +
// copy-on-write arming, and the committed image is byte-identical to a
// blocking checkpoint taken at the same cut — no matter how hard the
// application mutates memory, allocates, and frees during the overlap
// (DESIGN.md invariant 10).

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/crt"
	"repro/internal/dmtcp"
	"repro/internal/kernels"
)

// storeImageBytes reads the named image back out of the store.
func storeImageBytes(t testing.TB, store Store, name string) []byte {
	t.Helper()
	rc, err := store.Get(context.Background(), name)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// hammer starts mutator goroutines that pound the workload's memory —
// memsets over host and device buffers, managed-page faulting, and
// malloc/free churn — until the returned stop function is called. The
// first mutator error fails the test at stop time.
func hammer(t *testing.T, w *incrWorkload) (stop func()) {
	t.Helper()
	quit := make(chan struct{})
	var wg sync.WaitGroup
	var firstErr atomic.Value
	fail := func(err error) {
		if err != nil {
			firstErr.CompareAndSwap(nil, err)
		}
	}
	mutators := []func(i int) error{
		func(i int) error {
			return w.rt.Memset(w.host[i%incrHostBufs], byte(i), incrBufSize)
		},
		func(i int) error {
			return w.rt.Memset(w.dev[i%incrDevAllocs]+512, byte(i+3), incrBufSize/2)
		},
		func(i int) error {
			// Fault managed pages to the host, then write them through the
			// gated Memset path: a write through HostAccess's returned view
			// would be a raw-pointer store that can span a checkpoint
			// arming unpreserved (see the HostAccess contract).
			if _, err := w.rt.HostAccess(w.managed+uint64(i%16)*4096, 4096, false); err != nil {
				return err
			}
			return w.rt.Memset(w.managed+uint64(i%16)*4096, byte(i), 4096)
		},
		func(i int) error {
			a, err := w.rt.Malloc(32 << 10)
			if err != nil {
				return err
			}
			if err := w.rt.Memset(a, byte(i), 32<<10); err != nil {
				return err
			}
			return w.rt.Free(a)
		},
	}
	for mi, m := range mutators {
		wg.Add(1)
		go func(mi int, m func(int) error) {
			defer wg.Done()
			for i := mi; ; i += 7 {
				select {
				case <-quit:
					return
				default:
				}
				if err := m(i); err != nil {
					fail(err)
					return
				}
			}
		}(mi, m)
	}
	return func() {
		close(quit)
		wg.Wait()
		if err, _ := firstErr.Load().(error); err != nil {
			t.Fatalf("mutator failed during overlap: %v", err)
		}
	}
}

// TestConcurrentCheckpointTortureByteIdentity is the invariant-10
// torture test: two sessions execute the identical deterministic
// prefix; one takes a concurrent checkpoint and is hammered by mutators
// through the whole overlapped write, the other takes a blocking
// checkpoint of the same state undisturbed. The committed images must
// be byte-identical — full v2, gzip'd, and v3 delta alike — and no
// copy-on-write page may outlive the checkpoint. Run under -race in CI.
func TestConcurrentCheckpointTortureByteIdentity(t *testing.T) {
	for _, tc := range []struct {
		name        string
		opts        []Option
		incremental bool
	}{
		{"full-v2", nil, false},
		{"full-v2-gzip", []Option{WithGzip(1)}, false},
		{"delta-v3", []Option{WithIncremental(8)}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := append([]Option{WithShardSize(64 << 10)}, tc.opts...)
			a, err := New(opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			b, err := New(opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			wa := newIncrWorkload(t, a.Runtime())
			wb := newIncrWorkload(t, b.Runtime())
			ctx := context.Background()
			sa, sb := NewMemStore(), NewMemStore()

			if tc.incremental {
				// Identical committed bases, then an identical sparse
				// mutation, so "gen" is a delta on both sessions.
				if _, err := a.CheckpointTo(ctx, sa, "base"); err != nil {
					t.Fatal(err)
				}
				if _, err := b.CheckpointTo(ctx, sb, "base"); err != nil {
					t.Fatal(err)
				}
				wa.step(t, 1)
				wb.step(t, 1)
			}

			p, err := a.CheckpointAsync(ctx, sa, "gen")
			if err != nil {
				t.Fatal(err)
			}
			// The pause window has closed: everything from here on
			// overlaps the image write.
			stop := hammer(t, wa)
			st, werr := p.Wait()
			stop()
			if werr != nil {
				t.Fatal(werr)
			}
			if _, err := b.CheckpointTo(ctx, sb, "gen"); err != nil {
				t.Fatal(err)
			}

			ia := storeImageBytes(t, sa, "gen")
			ib := storeImageBytes(t, sb, "gen")
			if !bytes.Equal(ia, ib) {
				t.Fatalf("concurrent image differs from blocking image at the same cut (%d vs %d bytes)", len(ia), len(ib))
			}
			if n := a.Space().RetainedPages(); n != 0 {
				t.Fatalf("%d copy-on-write pages leaked after the checkpoint", n)
			}
			if tc.incremental && !st.Delta {
				t.Fatal("expected the overlapped checkpoint to be a delta")
			}
			if st.PauseDuration <= 0 || st.PauseDuration > st.Duration {
				t.Fatalf("implausible pause split: pause=%v total=%v", st.PauseDuration, st.Duration)
			}

			// The overlapped image also restores: a fresh session from it
			// must carry the cut-time bytes, not the mutators'.
			r, err := RestoreFrom(ctx, sa, "gen")
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			want := make([]byte, incrBufSize)
			got := make([]byte, incrBufSize)
			if err := b.Space().ReadAt(wb.host[0], want); err != nil {
				t.Fatal(err)
			}
			if err := r.Space().ReadAt(wb.host[0], got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatal("restored host buffer differs from the blocking reference")
			}
		})
	}
}

// TestConcurrentCheckpointArmsAmidMutators covers the arming window
// itself: mutators (including slice-based Memset writers that resolve
// memory before the cut) are already hammering when CheckpointAsync
// arms. armFrozen's micro-quiesce must drain them, so the run is
// race-detector clean and the committed image restores to a consistent
// state (no reference image is possible here — the cut lands at an
// arbitrary point of the mutation stream).
func TestConcurrentCheckpointArmsAmidMutators(t *testing.T) {
	s, err := New(WithShardSize(64 << 10))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := newIncrWorkload(t, s.Runtime())
	ctx := context.Background()
	store := NewMemStore()
	stop := hammer(t, w)
	p, err := s.CheckpointAsync(ctx, store, "gen")
	if err != nil {
		stop()
		t.Fatal(err)
	}
	if _, err := p.Wait(); err != nil {
		stop()
		t.Fatal(err)
	}
	stop()
	if n := s.Space().RetainedPages(); n != 0 {
		t.Fatalf("%d CoW pages leaked", n)
	}
	// The image restores: a Memset is atomic w.r.t. the cut (the arming
	// drained it), so each host buffer must be byte-uniform.
	r, err := RestoreFrom(ctx, store, "gen")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, incrBufSize)
	for i, h := range w.host {
		if err := r.Space().ReadAt(h, buf); err != nil {
			t.Fatal(err)
		}
		for j := 1; j < len(buf); j++ {
			if buf[j] != buf[0] {
				t.Fatalf("host buffer %d torn across the cut (byte %d: %#x vs %#x)", i, j, buf[j], buf[0])
			}
		}
	}
}

// gateStore delays Put until released, so tests can hold a checkpoint
// in its overlapped phase deterministically.
type gateStore struct {
	inner   Store
	entered chan struct{}
	release chan struct{}
}

func newGateStore(inner Store) *gateStore {
	return &gateStore{inner: inner, entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateStore) Put(ctx context.Context, name string, write func(io.Writer) error) error {
	close(g.entered)
	select {
	case <-g.release:
	case <-ctx.Done():
	}
	return g.inner.Put(ctx, name, write)
}
func (g *gateStore) Get(ctx context.Context, name string) (io.ReadCloser, error) {
	return g.inner.Get(ctx, name)
}
func (g *gateStore) List(ctx context.Context) ([]string, error) { return g.inner.List(ctx) }
func (g *gateStore) Delete(ctx context.Context, name string) error {
	return g.inner.Delete(ctx, name)
}

// TestCheckpointAsyncInFlightGuard pins the guard rail: while one
// concurrent checkpoint is writing, a second CheckpointAsync, every
// blocking checkpoint entry point, and a restart all report the typed
// ErrCheckpointInFlight — and the pending checkpoint still commits.
func TestCheckpointAsyncInFlightGuard(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := newIncrWorkload(t, s.Runtime())
	ctx := context.Background()

	var ref bytes.Buffer
	if _, err := s.Checkpoint(ctx, &ref); err != nil {
		t.Fatal(err)
	}

	gs := newGateStore(NewMemStore())
	p, err := s.CheckpointAsync(ctx, gs, "gen0")
	if err != nil {
		t.Fatal(err)
	}
	<-gs.entered

	if _, err := s.CheckpointAsync(ctx, gs, "gen1"); !errors.Is(err, ErrCheckpointInFlight) {
		t.Fatalf("second CheckpointAsync: got %v, want ErrCheckpointInFlight", err)
	}
	if _, err := s.CheckpointTo(ctx, NewMemStore(), "x"); !errors.Is(err, ErrCheckpointInFlight) {
		t.Fatalf("CheckpointTo during overlap: got %v, want ErrCheckpointInFlight", err)
	}
	if _, err := s.Checkpoint(ctx, io.Discard); !errors.Is(err, ErrCheckpointInFlight) {
		t.Fatalf("Checkpoint during overlap: got %v, want ErrCheckpointInFlight", err)
	}
	if err := s.Restart(ctx, bytes.NewReader(ref.Bytes())); !errors.Is(err, ErrCheckpointInFlight) {
		t.Fatalf("Restart during overlap: got %v, want ErrCheckpointInFlight", err)
	}

	close(gs.release)
	if _, err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := storeImageBytes(t, gs, "gen0"); len(got) == 0 {
		t.Fatal("pending checkpoint never committed")
	}
	// The guard clears: the session checkpoints again.
	if _, err := s.CheckpointTo(ctx, NewMemStore(), "after"); err != nil {
		t.Fatal(err)
	}
	_ = w
}

// TestCheckpointAsyncCancelNoLeak pins the other guard rail: a
// cancelled overlapped checkpoint surfaces ErrCancelled, leaves no
// partial image in the store, releases every retained copy-on-write
// page, and the session keeps working.
func TestCheckpointAsyncCancelNoLeak(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := newIncrWorkload(t, s.Runtime())

	dir := t.TempDir()
	ds, err := NewDirStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	gs := newGateStore(ds)
	ctx, cancel := context.WithCancel(context.Background())
	p, err := s.CheckpointAsync(ctx, gs, "gen0")
	if err != nil {
		t.Fatal(err)
	}
	<-gs.entered
	// Mutate during the overlap so the snapshot actually retains pages.
	w.step(t, 9)
	if n := s.Space().RetainedPages(); n == 0 {
		t.Fatal("expected retained CoW pages after mutating during the overlap")
	}
	cancel()
	if _, err := p.Wait(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Wait after cancel: got %v, want ErrCancelled", err)
	}
	if n := s.Space().RetainedPages(); n != 0 {
		t.Fatalf("%d copy-on-write pages leaked after cancellation", n)
	}
	names, err := ds.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("cancelled checkpoint left images behind: %v", names)
	}
	// The session survives and checkpoints cleanly afterwards.
	if _, err := s.CheckpointTo(context.Background(), NewMemStore(), "after"); err != nil {
		t.Fatal(err)
	}
}

// TestBlockingCheckpointExcludesAsync pins the reverse direction of
// the single-flight guard: a blocking (incremental) checkpoint holds
// the slot too, so a CheckpointAsync racing it reports
// ErrCheckpointInFlight instead of interleaving epoch cuts and
// corrupting the plugin's skip baseline.
func TestBlockingCheckpointExcludesAsync(t *testing.T) {
	s, err := New(WithIncremental(8))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	newIncrWorkload(t, s.Runtime())
	ctx := context.Background()
	gs := newGateStore(NewMemStore())
	blockDone := make(chan error, 1)
	go func() {
		_, err := s.CheckpointTo(ctx, gs, "blocking")
		blockDone <- err
	}()
	<-gs.entered
	if _, err := s.CheckpointAsync(ctx, NewMemStore(), "racer"); !errors.Is(err, ErrCheckpointInFlight) {
		t.Fatalf("CheckpointAsync during a blocking checkpoint: got %v, want ErrCheckpointInFlight", err)
	}
	close(gs.release)
	if err := <-blockDone; err != nil {
		t.Fatal(err)
	}
}

// TestQuiesceWaitsOutInFlightWrites pins the Freeze contract: Quiesce
// returns only once mutations already past the gate have completed, so
// a checkpoint taken while quiesced can never capture a torn write.
// Under -race this fails loudly if Freeze stops waiting.
func TestQuiesceWaitsOutInFlightWrites(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rt := s.Runtime()
	const size = 4 << 20
	h, err := rt.HostAlloc(size)
	if err != nil {
		t.Fatal(err)
	}
	quit := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-quit:
				return
			default:
			}
			if err := rt.Memset(h, byte(i), size); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	buf := make([]byte, size)
	for round := 0; round < 10; round++ {
		if err := s.Quiesce(); err != nil {
			t.Fatal(err)
		}
		if err := s.Space().ReadAt(h, buf); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < size; i++ {
			if buf[i] != buf[0] {
				t.Fatalf("round %d: torn write visible while quiesced (byte %d: %#x vs %#x)", round, i, buf[i], buf[0])
			}
		}
		if err := s.Resume(); err != nil {
			t.Fatal(err)
		}
	}
	close(quit)
	<-writerDone
}

// TestCoordinatorFailureResumesRanks: now that Quiesce really holds
// gates, a coordinated checkpoint that fails mid-flight must resume
// every quiesced rank — the member sessions stay usable, not frozen.
func TestCoordinatorFailureResumesRanks(t *testing.T) {
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ra, rb := a.Runtime(), b.Runtime()
	bufA, _ := ra.Malloc(64 << 10)
	bufB, _ := rb.Malloc(64 << 10)

	coord := dmtcp.NewCoordinator()
	coord.Add(0, a)
	coord.Add(1, b)
	sinkErr := errors.New("disk full")
	err = coord.CheckpointAll(func(rank int) (io.WriteCloser, error) {
		if rank == 1 {
			return nil, sinkErr
		}
		return nopWriteCloser{}, nil
	})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("CheckpointAll: got %v, want the sink error", err)
	}
	// Both ranks must be thawed: writes and launches complete promptly.
	done := make(chan error, 2)
	go func() { done <- ra.Memset(bufA, 0x11, 64<<10) }()
	go func() { done <- rb.Memset(bufB, 0x22, 64<<10) }()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("rank still frozen after a failed coordinated checkpoint")
		}
	}
}

type nopWriteCloser struct{}

func (nopWriteCloser) Write(p []byte) (int, error) { return len(p), nil }
func (nopWriteCloser) Close() error                { return nil }

// TestQuiesceResumeGate wires-for-real test: Quiesce must actually
// block application-side writes and kernel launches until Resume, the
// pair must balance (typed error on an unmatched Resume), and a
// checkpoint taken while quiesced must work — reads are ungated.
func TestQuiesceResumeGate(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rt := s.Runtime()
	fat, err := rt.RegisterFatBinary(kernels.Module)
	if err != nil {
		t.Fatal(err)
	}
	for name, k := range kernels.Table() {
		if err := rt.RegisterFunction(fat, name, k); err != nil {
			t.Fatal(err)
		}
	}
	buf, err := rt.Malloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	// The launch gets its own buffer: once resumed, the blocked Memset
	// and the blocked kernel run concurrently, and overlapping writes
	// would race (as they would on real memory).
	lbuf, err := rt.Malloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Resume(); !errors.Is(err, ErrNotQuiesced) {
		t.Fatalf("unbalanced Resume: got %v, want ErrNotQuiesced", err)
	}
	if err := s.Quiesce(); err != nil {
		t.Fatal(err)
	}

	writeDone := make(chan error, 1)
	go func() { writeDone <- rt.Memset(buf, 0xAA, 64<<10) }()
	launchDone := make(chan error, 1)
	go func() {
		lc := crt.LaunchConfig{Grid: crt.Dim3{X: 1}, Block: crt.Dim3{X: 64}}
		launchDone <- rt.LaunchKernel(fat, "fill", lc, crt.DefaultStream, lbuf, kernels.F32Arg(1), 64)
	}()
	select {
	case <-writeDone:
		t.Fatal("Memset proceeded while quiesced")
	case <-launchDone:
		t.Fatal("kernel launch proceeded while quiesced")
	case <-time.After(50 * time.Millisecond):
	}

	// Checkpoints read; a quiesced session checkpoints fine.
	if _, err := s.Checkpoint(context.Background(), io.Discard); err != nil {
		t.Fatal(err)
	}

	// Nested quiesce: the inner Resume must not open the gates.
	if err := s.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-writeDone:
		t.Fatal("Memset proceeded under a still-nested quiesce")
	case <-time.After(20 * time.Millisecond):
	}

	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := <-writeDone; err != nil {
		t.Fatal(err)
	}
	if err := <-launchDone; err != nil {
		t.Fatal(err)
	}
	// The launch is asynchronous: drain the device so the kernel's
	// writes finish before the session tears down under our feet.
	if err := rt.DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
	if err := s.Resume(); !errors.Is(err, ErrNotQuiesced) {
		t.Fatalf("over-balanced Resume: got %v, want ErrNotQuiesced", err)
	}
}

// TestRestartWhileQuiescedRejected: a restart under Quiesce would
// deadlock on the held launch gate (and the rebuilt space could never
// balance the pending Resume), so it must fail fast with ErrQuiesced —
// and the session must survive: Resume, then restart cleanly.
func TestRestartWhileQuiescedRejected(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	newIncrWorkload(t, s.Runtime())
	ctx := context.Background()
	store := NewMemStore()
	if _, err := s.CheckpointTo(ctx, store, "gen0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := s.RestartFrom(ctx, store, "gen0"); !errors.Is(err, ErrQuiesced) {
		t.Fatalf("restart while quiesced: got %v, want ErrQuiesced", err)
	}
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := s.RestartFrom(ctx, store, "gen0"); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", s.Generation())
	}
}

// TestQuiesceAsyncResume is the intended serving-path sequence: quiesce
// for a precise cut, arm the concurrent checkpoint, resume, and let the
// image write ride alongside execution.
func TestQuiesceAsyncResume(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := newIncrWorkload(t, s.Runtime())
	ctx := context.Background()
	store := NewMemStore()

	if err := s.Quiesce(); err != nil {
		t.Fatal(err)
	}
	p, err := s.CheckpointAsync(ctx, store, "gen0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	stop := hammer(t, w)
	st, err := p.Wait()
	stop()
	if err != nil {
		t.Fatal(err)
	}
	if st.PauseDuration >= st.Duration && st.Duration > 0 {
		t.Logf("pause %v of total %v (tiny image: overlap may round away)", st.PauseDuration, st.Duration)
	}
	if _, err := OpenImageFrom(ctx, store, "gen0"); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentPauseReduction pins the acceptance bound: on the
// standard ~69 MiB workload the snapshot-and-release path's
// application-visible pause is at least 5× shorter than the blocking
// path's full checkpoint. The margin is enormous in practice (the pause
// is metadata-only), so 5× stays robust on loaded CI machines.
func TestConcurrentPauseReduction(t *testing.T) {
	build := func(opts ...Option) (*Session, crt.Runtime) {
		t.Helper()
		s, err := New(append([]Option{WithWorkers(0)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		rt := s.Runtime()
		for i := 0; i < 16; i++ {
			h, err := rt.HostAlloc(2 << 20)
			if err != nil {
				t.Fatal(err)
			}
			if err := rt.Memset(h, byte(i+1), 2<<20); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 16; i++ {
			d, err := rt.Malloc(2 << 20)
			if err != nil {
				t.Fatal(err)
			}
			if err := rt.Memset(d, byte(0x21*i+3), 2<<20); err != nil {
				t.Fatal(err)
			}
		}
		m, err := rt.MallocManaged(2 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Memset(m, 0x7F, 2<<20); err != nil {
			t.Fatal(err)
		}
		return s, rt
	}
	blocking, _ := build()
	concurrent, _ := build(WithConcurrentCheckpoint())
	ctx := context.Background()
	const rounds = 5
	best := func(s *Session) time.Duration {
		min := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			st, err := s.CheckpointTo(ctx, NewMemStore(), "gen")
			if err != nil {
				t.Fatal(err)
			}
			if st.PauseDuration < min {
				min = st.PauseDuration
			}
		}
		return min
	}
	pb := best(blocking)
	pc := best(concurrent)
	t.Logf("pause: blocking %v, concurrent %v (%.1fx)", pb, pc, float64(pb)/float64(pc))
	if pc*5 > pb {
		t.Fatalf("concurrent pause %v not ≥5× shorter than blocking %v", pc, pb)
	}
}

// TestWithConcurrentCheckpointOption proves the option reroutes the
// blocking entry points: images stay byte-identical to the plain path
// and the stats report a pause strictly inside the total duration.
func TestWithConcurrentCheckpointOption(t *testing.T) {
	plain, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	conc, err := New(WithConcurrentCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer conc.Close()
	newIncrWorkload(t, plain.Runtime())
	newIncrWorkload(t, conc.Runtime())
	ctx := context.Background()
	sp, sc := NewMemStore(), NewMemStore()
	if _, err := plain.CheckpointTo(ctx, sp, "gen"); err != nil {
		t.Fatal(err)
	}
	st, err := conc.CheckpointTo(ctx, sc, "gen")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(storeImageBytes(t, sp, "gen"), storeImageBytes(t, sc, "gen")) {
		t.Fatal("WithConcurrentCheckpoint image differs from the blocking image")
	}
	if st.PauseDuration <= 0 || st.PauseDuration > st.Duration {
		t.Fatalf("implausible pause split: pause=%v total=%v", st.PauseDuration, st.Duration)
	}
	// Plain io.Writer checkpoints take the snapshot path too.
	var buf bytes.Buffer
	if _, err := conc.Checkpoint(ctx, &buf); err != nil {
		t.Fatal(err)
	}
	var ref bytes.Buffer
	if _, err := plain.Checkpoint(ctx, &ref); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), ref.Bytes()) {
		t.Fatal("concurrent Checkpoint(w) differs from blocking")
	}
}

// TestCloseWhileQuiesced pins that Close on a quiesced session (the
// state a migrated source is left in) releases the quiesce and tears
// down instead of deadlocking against the frozen space, and that
// writers parked at the gate unblock rather than hanging forever.
func TestCloseWhileQuiesced(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	rt := s.Runtime()
	buf, err := rt.HostAlloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	// Nested quiesce: Close must drain every level, not just one.
	if err := s.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := s.Quiesce(); err != nil {
		t.Fatal(err)
	}
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		rt.Memset(buf, 0xEE, 64<<10) // blocked at the write gate; outcome irrelevant
	}()
	time.Sleep(10 * time.Millisecond) // let the writer reach the gate
	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	for what, ch := range map[string]chan struct{}{"Close": closed, "parked writer": parked} {
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Fatalf("%s did not return on a quiesced session", what)
		}
	}
	s.Close() // idempotent after the quiesced teardown
	if err := s.Resume(); !errors.Is(err, ErrNotQuiesced) {
		t.Fatalf("Resume after Close = %v, want ErrNotQuiesced", err)
	}
}
