package crac

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/netstore"
)

// HTTPStore is a Store backed by a remote image server speaking the
// netstore protocol (ServeStore on the other end, or `cracmigrate
// -serve`). It implements RandomAccessStore: GetAt issues HTTP Range
// requests, so a lazy restart faults individual shards across the wire
// instead of downloading whole images, and Put streams the image as
// the checkpoint pipeline produces it.
//
// Failures are classified for retry: server-side errors (5xx, 408,
// 429) and transport failures (timeouts, connection resets) report
// Transient() == true, so wrapping an HTTPStore in WithRetry — or
// checkpointing through it with WithCheckpointRetry — gives bounded
// backoff over a flaky network. A 404 maps to ErrImageNotFound and a
// caller-cancelled context to the context's own error; neither
// retries.
type HTTPStore struct {
	c *netstore.Client
}

// An HTTPStoreOption configures NewHTTPStore.
type HTTPStoreOption func(*httpStoreSettings)

type httpStoreSettings struct {
	client *http.Client
}

// WithHTTPClient sets the *http.Client used for every request —
// custom TLS configuration, timeouts, or connection pooling. The
// default is http.DefaultClient.
func WithHTTPClient(c *http.Client) HTTPStoreOption {
	return func(s *httpStoreSettings) { s.client = c }
}

// NewHTTPStore returns a Store for the image server at baseURL
// ("http://host:port" or "https://host:port", optionally with a path
// prefix under which the server is mounted).
func NewHTTPStore(baseURL string, opts ...HTTPStoreOption) (*HTTPStore, error) {
	var cfg httpStoreSettings
	for _, o := range opts {
		o(&cfg)
	}
	c, err := netstore.NewClient(baseURL, cfg.client)
	if err != nil {
		return nil, err
	}
	return &HTTPStore{c: c}, nil
}

// BaseURL returns the server base URL the store talks to.
func (s *HTTPStore) BaseURL() string { return s.c.BaseURL() }

// mapErr folds the wire-level not-found sentinel into the public one;
// every other netstore error passes through with its Transient()
// classification intact.
func (s *HTTPStore) mapErr(err error, name string) error {
	if errors.Is(err, netstore.ErrNotFound) {
		return fmt.Errorf("%w: %q (%s)", ErrImageNotFound, name, s.c.BaseURL())
	}
	return err
}

// Put implements Store, streaming the image to the server. Atomicity
// is the remote store's: the server publishes the name only once the
// full body arrived and its own Put committed.
func (s *HTTPStore) Put(ctx context.Context, name string, write func(io.Writer) error) error {
	if err := validateImageName(name); err != nil {
		return err
	}
	return s.mapErr(s.c.Put(ctx, name, write), name)
}

// Get implements Store.
func (s *HTTPStore) Get(ctx context.Context, name string) (io.ReadCloser, error) {
	if err := validateImageName(name); err != nil {
		return nil, err
	}
	rc, err := s.c.Get(ctx, name)
	if err != nil {
		return nil, s.mapErr(err, name)
	}
	return rc, nil
}

// List implements Store.
func (s *HTTPStore) List(ctx context.Context) ([]string, error) {
	return s.c.List(ctx)
}

// Delete implements Store.
func (s *HTTPStore) Delete(ctx context.Context, name string) error {
	if err := validateImageName(name); err != nil {
		return err
	}
	return s.mapErr(s.c.Delete(ctx, name), name)
}

// GetAt implements RandomAccessStore: the returned handle resolves the
// image size with one HEAD request and serves each ReadAt with an
// independent Range request (safe for concurrent use).
func (s *HTTPStore) GetAt(ctx context.Context, name string) (ReaderAtCloser, int64, error) {
	if err := validateImageName(name); err != nil {
		return nil, 0, err
	}
	src, size, err := s.c.GetAt(ctx, name)
	if err != nil {
		return nil, 0, s.mapErr(err, name)
	}
	return src, size, nil
}

// ExistsBatch implements BatchExister in one round trip, so a CASStore
// layered over an HTTPStore skips uploading chunks the remote side
// already holds. Older servers without the endpoint are handled by the
// client (it falls back to a List).
func (s *HTTPStore) ExistsBatch(ctx context.Context, names []string) (map[string]bool, error) {
	return s.c.ExistsBatch(ctx, names)
}

var (
	_ Store             = (*HTTPStore)(nil)
	_ RandomAccessStore = (*HTTPStore)(nil)
	_ BatchExister      = (*HTTPStore)(nil)
)

// ServeStore exposes store over HTTP as an http.Handler speaking the
// protocol NewHTTPStore consumes: mount it on a mux (or hand it to
// http.Serve) on the destination node and point an HTTPStore at it.
// Range requests are honoured whenever store implements
// RandomAccessStore, which is what a remote lazy restart needs to
// fault shards on demand.
func ServeStore(store Store) http.Handler {
	b := netstore.Backend{
		Get:    store.Get,
		Put:    store.Put,
		List:   store.List,
		Delete: store.Delete,
		IsNotFound: func(err error) bool {
			return errors.Is(err, ErrImageNotFound)
		},
		GetAt: func(ctx context.Context, name string) (netstore.ReaderAtCloser, int64, error) {
			return openImageAt(ctx, store, name)
		},
		Exists: func(ctx context.Context, name string) (bool, error) {
			rc, err := store.Get(ctx, name)
			if err != nil {
				if errors.Is(err, ErrImageNotFound) {
					return false, nil
				}
				return false, err
			}
			rc.Close()
			return true, nil
		},
	}
	return netstore.NewHandler(b)
}
