package crac

import (
	"context"
	"errors"
	"io"
	"path/filepath"
	"testing"
)

// newChainSession builds a session configured for delta chains plus
// one device buffer to mutate between checkpoints.
func newChainSession(t *testing.T) (*Session, uint64) {
	t.Helper()
	s, err := New(WithWorkers(0), WithShardSize(64<<10), WithIncremental(8))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	rt := s.Runtime()
	d, err := rt.Malloc(256 << 10)
	if err != nil {
		t.Fatalf("Malloc: %v", err)
	}
	if err := rt.Memset(d, 1, 256<<10); err != nil {
		t.Fatalf("Memset: %v", err)
	}
	return s, d
}

// buildChain checkpoints names[0] as a base and the rest as deltas,
// mutating the buffer before each.
func buildChain(t *testing.T, s *Session, d uint64, store Store, names ...string) {
	t.Helper()
	ctx := context.Background()
	for i, name := range names {
		if err := s.Runtime().Memset(d+uint64(i*4096), byte(i+2), 4096); err != nil {
			t.Fatalf("Memset: %v", err)
		}
		if _, err := s.CheckpointTo(ctx, store, name); err != nil {
			t.Fatalf("CheckpointTo(%s): %v", name, err)
		}
	}
}

// corruptStored flips one bit of the named image in place. frac picks
// the offset as a fraction of the image length.
func corruptStored(t *testing.T, store Store, name string, frac float64) {
	t.Helper()
	ctx := context.Background()
	rc, err := store.Get(ctx, name)
	if err != nil {
		t.Fatalf("Get(%s): %v", name, err)
	}
	b, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatalf("ReadAll(%s): %v", name, err)
	}
	b[int(frac*float64(len(b)-1))] ^= 0x40
	if err := store.Put(ctx, name, func(w io.Writer) error {
		_, werr := w.Write(b)
		return werr
	}); err != nil {
		t.Fatalf("Put(%s): %v", name, err)
	}
}

func TestVerifyIntactImage(t *testing.T) {
	s, d := newChainSession(t)
	store := NewMemStore()
	buildChain(t, s, d, store, "g0")
	ctx := context.Background()
	img, err := OpenImageFrom(ctx, store, "g0")
	if err != nil {
		t.Fatalf("OpenImageFrom: %v", err)
	}
	if !img.Info().Verified {
		t.Fatal("fresh v3 image not marked Verified (trailer missing?)")
	}
	if err := img.Verify(ctx); err != nil {
		t.Fatalf("Verify on intact image: %v", err)
	}
}

func TestVerifyChainWalksToBase(t *testing.T) {
	s, d := newChainSession(t)
	store := NewMemStore()
	buildChain(t, s, d, store, "g0", "g1", "g2")
	chain, err := VerifyChain(context.Background(), store, "g2")
	if err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
	want := []string{"g2", "g1", "g0"}
	if len(chain) != len(want) {
		t.Fatalf("chain = %v, want %v", chain, want)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain = %v, want %v", chain, want)
		}
	}
}

func TestVerifyChainCorruptMember(t *testing.T) {
	s, d := newChainSession(t)
	store := NewMemStore()
	buildChain(t, s, d, store, "g0", "g1", "g2")
	corruptStored(t, store, "g1", 0.5)
	_, err := VerifyChain(context.Background(), store, "g2")
	if !errors.Is(err, ErrCorruptImage) {
		t.Fatalf("VerifyChain = %v, want ErrCorruptImage", err)
	}
	if !errors.Is(err, ErrDeltaChain) {
		t.Fatalf("VerifyChain = %v, want the chain context (ErrDeltaChain) too", err)
	}
}

func TestVerifyChainMissingParent(t *testing.T) {
	s, d := newChainSession(t)
	store := NewMemStore()
	buildChain(t, s, d, store, "g0", "g1")
	if err := store.Delete(context.Background(), "g0"); err != nil {
		t.Fatal(err)
	}
	_, err := VerifyChain(context.Background(), store, "g1")
	if !errors.Is(err, ErrImageNotFound) || !errors.Is(err, ErrDeltaChain) {
		t.Fatalf("VerifyChain = %v, want ErrImageNotFound wrapped in ErrDeltaChain", err)
	}
}

func TestVerifyChainParentIdentityMismatch(t *testing.T) {
	s, d := newChainSession(t)
	store := NewMemStore()
	buildChain(t, s, d, store, "g0", "g1")
	// Regenerate "g0" as an unrelated base: same name, different
	// content, so a different (content-derived) identity.
	s2, d2 := newChainSession(t)
	if err := s2.Runtime().Memset(d2, 0x77, 8192); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.CheckpointTo(context.Background(), store, "g0"); err != nil {
		t.Fatal(err)
	}
	_, err := VerifyChain(context.Background(), store, "g1")
	if !errors.Is(err, ErrDeltaChain) {
		t.Fatalf("VerifyChain = %v, want ErrDeltaChain identity mismatch", err)
	}
}

func TestScrubQuarantinesCorruptAndCondemned(t *testing.T) {
	store := NewMemStore()
	ctx := context.Background()

	sa, da := newChainSession(t)
	buildChain(t, sa, da, store, "a0", "a1")
	sb, db := newChainSession(t)
	buildChain(t, sb, db, store, "b0", "b1")
	sc, dc := newChainSession(t)
	buildChain(t, sc, dc, store, "c0")

	corruptStored(t, store, "b0", 0.5) // corrupt base condemns its delta b1
	corruptStored(t, store, "c0", 0.5) // standalone corruption

	rep, err := Scrub(ctx, store)
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if got, want := rep.Intact, []string{"a0", "a1"}; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Intact = %v, want %v", got, want)
	}
	corrupt := map[string]bool{}
	for _, iss := range rep.Corrupt {
		corrupt[iss.Name] = true
		if !errors.Is(iss.Err, ErrCorruptImage) {
			t.Errorf("Corrupt[%s] err = %v, want ErrCorruptImage", iss.Name, iss.Err)
		}
	}
	if !corrupt["b0"] || !corrupt["c0"] || len(corrupt) != 2 {
		t.Fatalf("Corrupt = %v, want {b0, c0}", rep.Corrupt)
	}
	if len(rep.Condemned) != 1 || rep.Condemned[0] != "b1" {
		t.Fatalf("Condemned = %v, want [b1]", rep.Condemned)
	}
	if len(rep.Quarantined) != 3 {
		t.Fatalf("Quarantined = %v, want 3 images moved aside", rep.Quarantined)
	}

	names, err := store.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, gone := range []string{"b0", "b1", "c0"} {
		if have[gone] {
			t.Errorf("%s still present after quarantine", gone)
		}
		if !have[gone+"~quarantined"] {
			t.Errorf("%s~quarantined missing: bytes must stay for forensics", gone)
		}
		if !Quarantined(gone + "~quarantined") {
			t.Errorf("Quarantined(%q) = false", gone+"~quarantined")
		}
	}

	// A second pass skips the quarantined names and reports all-clear.
	rep2, err := Scrub(ctx, store)
	if err != nil {
		t.Fatalf("second Scrub: %v", err)
	}
	if len(rep2.Corrupt) != 0 || len(rep2.Condemned) != 0 || len(rep2.Quarantined) != 0 {
		t.Fatalf("second Scrub not clean: %+v", rep2)
	}
}

func TestScrubSingleImageStoreNeverQuarantines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "one.img")
	fs := NewFileStore(path, WithNoSync())
	s, d := newChainSession(t)
	buildChain(t, s, d, fs, "one.img")
	corruptStored(t, fs, "one.img", 0.5)
	rep, err := Scrub(context.Background(), fs)
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if len(rep.Corrupt) != 1 {
		t.Fatalf("Corrupt = %v, want the slot reported", rep.Corrupt)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("Quarantined = %v: single-slot stores must never quarantine", rep.Quarantined)
	}
	if _, err := fs.Get(context.Background(), "one.img"); err != nil {
		t.Fatalf("slot image gone after scrub: %v", err)
	}
}

func TestRepairChainIntact(t *testing.T) {
	s, d := newChainSession(t)
	store := NewMemStore()
	buildChain(t, s, d, store, "g0", "g1")
	rep, err := RepairChain(context.Background(), store, "g1", nil)
	if err != nil {
		t.Fatalf("RepairChain: %v", err)
	}
	if !rep.Intact || rep.Tip != "g1" {
		t.Fatalf("report = %+v, want Intact tip g1", rep)
	}
}

func TestRepairChainFallsBackToIntactAncestor(t *testing.T) {
	s, d := newChainSession(t)
	store := NewMemStore()
	buildChain(t, s, d, store, "g0", "g1", "g2")
	corruptStored(t, store, "g2", 0.5)
	rep, err := RepairChain(context.Background(), store, "g2", nil)
	if err != nil {
		t.Fatalf("RepairChain: %v", err)
	}
	if rep.Intact || rep.Tip != "g1" {
		t.Fatalf("report = %+v, want fallback tip g1", rep)
	}
	if len(rep.Broken) != 1 || rep.Broken[0] != "g2" {
		t.Fatalf("Broken = %v, want [g2]", rep.Broken)
	}
	// The fallback tip must actually restore.
	s2, err := RestoreFrom(context.Background(), store, rep.Tip)
	if err != nil {
		t.Fatalf("RestoreFrom(%s): %v", rep.Tip, err)
	}
	s2.Close()
}

func TestRepairChainRebasesFromLiveSession(t *testing.T) {
	s, d := newChainSession(t)
	store := NewMemStore()
	buildChain(t, s, d, store, "g0", "g1")
	corruptStored(t, store, "g1", 0.5)
	ctx := context.Background()
	rep, err := RepairChain(ctx, store, "g1", s)
	if err != nil {
		t.Fatalf("RepairChain: %v", err)
	}
	if rep.Rebased != "g1-rebase" || rep.Tip != "g1-rebase" {
		t.Fatalf("report = %+v, want rebased tip g1-rebase", rep)
	}
	chain, err := VerifyChain(ctx, store, rep.Tip)
	if err != nil {
		t.Fatalf("VerifyChain(%s): %v", rep.Tip, err)
	}
	if len(chain) != 1 {
		t.Fatalf("rebased image has chain %v, want a self-contained base", chain)
	}
}

func TestRepairChainRebaseNameCollision(t *testing.T) {
	s, d := newChainSession(t)
	store := NewMemStore()
	buildChain(t, s, d, store, "g0")
	corruptStored(t, store, "g0", 0.5)
	ctx := context.Background()
	// Occupy the default rebase name: the repair must not overwrite it.
	if err := store.Put(ctx, "g0-rebase", func(w io.Writer) error {
		_, err := w.Write([]byte("unrelated"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := RepairChain(ctx, store, "g0", s)
	if err != nil {
		t.Fatalf("RepairChain: %v", err)
	}
	if rep.Rebased != "g0-rebase2" {
		t.Fatalf("Rebased = %q, want g0-rebase2", rep.Rebased)
	}
	rc, err := store.Get(ctx, "g0-rebase")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(rc)
	rc.Close()
	if string(b) != "unrelated" {
		t.Fatal("repair overwrote the occupied rebase name")
	}
}

func TestRepairChainNothingIntact(t *testing.T) {
	s, d := newChainSession(t)
	store := NewMemStore()
	buildChain(t, s, d, store, "g0", "g1")
	corruptStored(t, store, "g0", 0.5)
	corruptStored(t, store, "g1", 0.5)
	_, err := RepairChain(context.Background(), store, "g1", nil)
	if !errors.Is(err, ErrCorruptImage) {
		t.Fatalf("RepairChain = %v, want ErrCorruptImage (no intact ancestor)", err)
	}
}
