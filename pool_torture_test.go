package crac

// Pool torture: session churn under staggered epoch cuts. A handful of
// tenants open, fill, checkpoint, restart, and close sessions against
// one Pool with a deliberately tight retained-page budget, under -race
// in CI. The invariants:
//
//   - the stagger scheduler never lets reserved or live retained pages
//     exceed the global budget, no matter how the churn interleaves;
//   - every restart sees exactly the checkpointed bytes;
//   - quota rejections are typed (ErrQuotaExceeded) and counted;
//   - at drain: zero retained pages, no goroutine leaks.
//
// The schedule is deterministic per seed; CRAC_TORTURE_SEED selects it
// (CI runs a 1/7/1337 matrix) and failures echo the seed for replay.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tortureFill is fillHost without the t.Fatal, safe off the test
// goroutine.
func tortureFill(ps *PoolSession, size uint64, pat byte) (uint64, error) {
	rt := ps.Session().Runtime()
	h, err := rt.HostAlloc(size)
	if err != nil {
		return 0, err
	}
	return h, rt.Memset(h, pat, size)
}

func TestPoolTortureLoad(t *testing.T) {
	seed := tortureSeed(t)
	baseGoroutines := runtime.NumGoroutine()
	ctx := context.Background()

	const (
		workers   = 6
		opsPerW   = 30
		fillBytes = 64 << 10
	)
	sessionOpts := append(poolTestOpts(), WithConcurrentCheckpoint())

	// Probe one session's cut footprint so the budget can be expressed
	// in session multiples: 2.5x admits at most two cuts at once, which
	// keeps the stagger queue busy for the whole run.
	probePool, err := NewPool(NewMemStore(), WithPoolSessionOptions(sessionOpts...))
	if err != nil {
		t.Fatal(err)
	}
	pps, err := probePool.Open("probe")
	if err != nil {
		t.Fatal(err)
	}
	fillHost(t, pps, fillBytes, 0x11)
	perSession := pps.cutPages()
	if err := probePool.Close(); err != nil {
		t.Fatal(err)
	}
	budget := 2*perSession + perSession/2

	pool, err := NewPool(NewMemStore(),
		WithPoolSessionOptions(sessionOpts...),
		WithPoolPageBudget(budget),
		WithPoolMaxConcurrentCuts(3),
		WithPoolTenantDefaults(TenantQuota{MaxSessions: 2}))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("page budget %d (2.5 x %d/session)", budget, perSession)

	// Sample live retained pages while the churn runs; the scheduler
	// must keep them under the budget at every instant.
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	var livePeak atomic.Int64
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := pool.RetainedPages(); n > livePeak.Load() {
				livePeak.Store(n)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	type liveSession struct {
		ps       *PoolSession
		addr     uint64
		pat      byte // current memory contents
		img      string
		imgPat   byte // contents captured by img
		hasImage bool
	}
	var (
		wantQuotaRejects atomic.Int64
		wantCheckpoints  atomic.Int64
		wantRestarts     atomic.Int64
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("w%d", w)
			rng := rand.New(rand.NewSource(seed*1000 + int64(w)))
			var live []*liveSession
			gen := 0
			fail := func(format string, args ...any) {
				errCh <- fmt.Errorf("worker %d (seed %d): %s", w, seed, fmt.Sprintf(format, args...))
			}
			open := func() bool {
				ps, err := pool.Open(tenant)
				if err != nil {
					fail("open: %v", err)
					return false
				}
				pat := byte(rng.Intn(256))
				addr, err := tortureFill(ps, fillBytes, pat)
				if err != nil {
					fail("fill: %v", err)
					return false
				}
				live = append(live, &liveSession{ps: ps, addr: addr, pat: pat})
				return true
			}
			if !open() {
				return
			}
			for op := 0; op < opsPerW; op++ {
				idx := rng.Intn(len(live))
				ls := live[idx]
				switch k := rng.Intn(10); {
				case k <= 1: // churn: open up to quota, else close one
					if len(live) < 2 {
						if !open() {
							return
						}
					} else {
						ls.ps.Close()
						live = append(live[:idx], live[idx+1:]...)
					}
				case k == 2: // poke the session quota from over the line
					if len(live) == 2 {
						if _, err := pool.Open(tenant); !errors.Is(err, ErrQuotaExceeded) {
							fail("open over quota: got %v, want ErrQuotaExceeded", err)
							return
						}
						wantQuotaRejects.Add(1)
					}
				case k <= 6: // mutate + checkpoint
					pat := byte(rng.Intn(256))
					if err := ls.ps.Session().Runtime().Memset(ls.addr, pat, fillBytes); err != nil {
						fail("memset: %v", err)
						return
					}
					ls.pat = pat
					name := fmt.Sprintf("g%d", gen)
					gen++
					if _, err := ls.ps.Checkpoint(ctx, name); err != nil {
						fail("checkpoint %q: %v", name, err)
						return
					}
					wantCheckpoints.Add(1)
					ls.img, ls.imgPat, ls.hasImage = name, pat, true
				default: // restart from the session's own last image
					if !ls.hasImage {
						continue
					}
					if err := ls.ps.Restart(ctx, ls.img); err != nil {
						fail("restart %q: %v", ls.img, err)
						return
					}
					wantRestarts.Add(1)
					b, err := ls.ps.Session().Runtime().HostAccess(ls.addr, 1, false)
					if err != nil {
						fail("read back: %v", err)
						return
					}
					if b[0] != ls.imgPat {
						fail("restart %q: byte %#x, want %#x", ls.img, b[0], ls.imgPat)
						return
					}
					ls.pat = ls.imgPat
				}
			}
			for _, ls := range live {
				ls.ps.Close()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	sampler.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if n := pool.RetainedPages(); n != 0 {
		t.Errorf("retained pages at drain: %d, want 0", n)
	}
	st := pool.Stats()
	if st.ReservedPagePeak > budget {
		t.Errorf("reserved pages peaked at %d, over the %d budget", st.ReservedPagePeak, budget)
	}
	if peak := livePeak.Load(); peak > budget {
		t.Errorf("live retained pages peaked at %d, over the %d budget", peak, budget)
	}
	if st.ReservedPages != 0 || st.InFlight != 0 || st.Waiting != 0 {
		t.Errorf("pool not drained: %+v", st)
	}
	if st.Checkpoints != uint64(wantCheckpoints.Load()) || st.Restarts != uint64(wantRestarts.Load()) {
		t.Errorf("op counts: %d checkpoints / %d restarts, want %d / %d",
			st.Checkpoints, st.Restarts, wantCheckpoints.Load(), wantRestarts.Load())
	}
	if st.RejectedQuota != uint64(wantQuotaRejects.Load()) {
		t.Errorf("quota rejections: %d, want %d", st.RejectedQuota, wantQuotaRejects.Load())
	}
	if st.Failures != 0 || st.RejectedSaturated != 0 {
		t.Errorf("unexpected failures/saturation: %+v", st)
	}

	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	settleGoroutines(t, baseGoroutines)
}
