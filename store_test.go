package crac

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func storePutBytes(t *testing.T, s Store, name string, b []byte) {
	t.Helper()
	if err := s.Put(context.Background(), name, func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	}); err != nil {
		t.Fatalf("Put(%s): %v", name, err)
	}
}

func storeGetBytes(t *testing.T, s Store, name string) []byte {
	t.Helper()
	rc, err := s.Get(context.Background(), name)
	if err != nil {
		t.Fatalf("Get(%s): %v", name, err)
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return b
}

// testEveryStore runs the same contract checks over all three built-in
// stores.
func testEveryStore(t *testing.T, mk func(t *testing.T) Store) {
	ctx := context.Background()
	t.Run("roundtrip", func(t *testing.T) {
		s := mk(t)
		storePutBytes(t, s, "gen1", []byte("image-one"))
		if got := storeGetBytes(t, s, "gen1"); string(got) != "image-one" {
			t.Fatalf("roundtrip = %q", got)
		}
	})
	t.Run("overwrite", func(t *testing.T) {
		s := mk(t)
		storePutBytes(t, s, "gen1", []byte("old"))
		storePutBytes(t, s, "gen1", []byte("new"))
		if got := storeGetBytes(t, s, "gen1"); string(got) != "new" {
			t.Fatalf("after overwrite = %q", got)
		}
	})
	t.Run("missing", func(t *testing.T) {
		s := mk(t)
		if _, err := s.Get(ctx, "nope"); !errors.Is(err, ErrImageNotFound) {
			t.Fatalf("Get missing = %v, want ErrImageNotFound", err)
		}
		if err := s.Delete(ctx, "nope"); !errors.Is(err, ErrImageNotFound) {
			t.Fatalf("Delete missing = %v, want ErrImageNotFound", err)
		}
	})
	t.Run("atomic-put-failure", func(t *testing.T) {
		s := mk(t)
		boom := errors.New("boom")
		err := s.Put(ctx, "gen1", func(w io.Writer) error {
			w.Write([]byte("partial bytes that must never become visible"))
			return boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("Put error = %v, want boom", err)
		}
		if _, err := s.Get(ctx, "gen1"); !errors.Is(err, ErrImageNotFound) {
			t.Fatalf("failed Put left an image behind: Get = %v", err)
		}
		names, err := s.List(ctx)
		if err != nil || len(names) != 0 {
			t.Fatalf("List after failed Put = %v, %v", names, err)
		}
	})
	t.Run("cancelled-ctx", func(t *testing.T) {
		s := mk(t)
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		if err := s.Put(cctx, "gen1", func(io.Writer) error { return nil }); !errors.Is(err, context.Canceled) {
			t.Fatalf("Put with cancelled ctx = %v", err)
		}
	})
	t.Run("delete", func(t *testing.T) {
		s := mk(t)
		storePutBytes(t, s, "gen1", []byte("x"))
		if err := s.Delete(ctx, "gen1"); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if _, err := s.Get(ctx, "gen1"); !errors.Is(err, ErrImageNotFound) {
			t.Fatalf("Get after Delete = %v", err)
		}
	})
}

func TestMemStoreContract(t *testing.T) {
	testEveryStore(t, func(t *testing.T) Store { return NewMemStore() })
}

func TestDirStoreContract(t *testing.T) {
	testEveryStore(t, func(t *testing.T) Store {
		s, err := NewDirStore(filepath.Join(t.TempDir(), "imgs"), 0)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

func TestFileStoreRoundTrip(t *testing.T) {
	// FileStore holds a single image at a fixed path, whatever the name.
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "ckpt.img")
	s := NewFileStore(path)
	storePutBytes(t, s, "anything", []byte("image"))
	if got := storeGetBytes(t, s, "anything"); string(got) != "image" {
		t.Fatalf("roundtrip = %q", got)
	}
	names, err := s.List(ctx)
	if err != nil || len(names) != 1 || names[0] != "ckpt.img" {
		t.Fatalf("List = %v, %v", names, err)
	}
	if err := s.Delete(ctx, "anything"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get(ctx, "anything"); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("Get after Delete = %v", err)
	}
}

func TestFileStoreAtomicFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.img")
	s := NewFileStore(path)
	storePutBytes(t, s, "x", []byte("good image"))
	boom := errors.New("boom")
	err := s.Put(context.Background(), "x", func(w io.Writer) error {
		w.Write([]byte("half an image"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Put = %v", err)
	}
	// The previous image survives untouched, and no temp files linger.
	if got := storeGetBytes(t, s, "x"); string(got) != "good image" {
		t.Fatalf("failed Put clobbered the image: %q", got)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name() != "ckpt.img" {
			t.Fatalf("leftover file %q after failed Put", e.Name())
		}
	}
}

func TestDirStoreRetention(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s, err := NewDirStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		storePutBytes(t, s, fmt.Sprintf("gen%03d", i), []byte{byte(i)})
		// Distinct mtimes so retention order is unambiguous on coarse
		// filesystem clocks.
		tm := time.Now().Add(time.Duration(i-6) * time.Second)
		os.Chtimes(filepath.Join(dir, fmt.Sprintf("gen%03d.img", i)), tm, tm)
	}
	names, err := s.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"gen003", "gen004", "gen005"}
	if len(names) != len(want) {
		t.Fatalf("List after retention = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("List after retention = %v, want %v", names, want)
		}
	}
}

func TestDirStoreRejectsHostileNames(t *testing.T) {
	s, err := NewDirStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", ".", "..", "a/b", `a\b`, ".hidden", "../escape"} {
		if err := s.Put(context.Background(), name, func(io.Writer) error { return nil }); err == nil {
			t.Fatalf("Put(%q) accepted a hostile name", name)
		} else if !strings.Contains(err.Error(), "invalid image name") {
			t.Fatalf("Put(%q) = %v, want invalid-name error", name, err)
		}
	}
}

func TestDirStoreListSorted(t *testing.T) {
	s, err := NewDirStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"zeta", "alpha", "mid"} {
		storePutBytes(t, s, n, []byte(n))
	}
	names, err := s.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Fatalf("List = %v, want sorted", names)
	}
}

// TestDirStoreQuarantineDead pins that images Scrub moved aside are
// dead to the store: List hides them (so chain resolution and a
// re-scrub never consider them live), retention neither counts them
// toward Keep nor removes them, and their bytes stay fetchable by
// exact name for forensics.
func TestDirStoreQuarantineDead(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s, err := NewDirStore(dir, 2, WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	storePutBytes(t, s, "bad~quarantined", []byte("forensics"))
	// Oldest mtime: a live image this stale would be pruned first.
	old := time.Now().Add(-time.Hour)
	os.Chtimes(filepath.Join(dir, "bad~quarantined.img"), old, old)
	for i := 0; i < 3; i++ {
		storePutBytes(t, s, fmt.Sprintf("gen%d", i), []byte{byte(i)})
		tm := time.Now().Add(time.Duration(i-3) * time.Second)
		os.Chtimes(filepath.Join(dir, fmt.Sprintf("gen%d.img", i)), tm, tm)
	}
	storePutBytes(t, s, "gen3", []byte{3})

	names, err := s.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if Quarantined(n) {
			t.Fatalf("List = %v: quarantined image listed as live", names)
		}
	}
	// Keep=2 retains the two newest live images; the quarantined file
	// neither displaced a live slot nor got pruned itself.
	if len(names) != 2 || names[0] != "gen2" || names[1] != "gen3" {
		t.Fatalf("List = %v, want [gen2 gen3]", names)
	}
	rc, err := s.Get(ctx, "bad~quarantined")
	if err != nil {
		t.Fatalf("quarantined bytes pruned: %v", err)
	}
	rc.Close()
}

// TestDirStoreChainAwareRetention pins that Keep never orphans an
// incremental chain: ancestors of retained delta images survive
// retention even when they fall outside the Keep-newest window, and a
// later chain rotation lets the old chain age out as a unit.
func TestDirStoreChainAwareRetention(t *testing.T) {
	store, err := NewDirStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(WithIncremental(8))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := newIncrWorkload(t, s.Runtime())
	ctx := context.Background()

	for i := 0; i < 4; i++ {
		w.step(t, i)
		if _, err := s.CheckpointTo(ctx, store, fmt.Sprintf("gen%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Keep=2 would naively retain only gen2/gen3 — but gen3 is a delta
	// whose lineage runs gen3→gen2→gen1→gen0, so the whole chain must
	// survive.
	names, err := store.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 4 {
		t.Fatalf("chain ancestors pruned: %v", names)
	}
	restored, err := RestoreFrom(ctx, store, "gen3")
	if err != nil {
		t.Fatalf("chain tip must stay restorable after retention: %v", err)
	}
	restored.Close()

	// A restart breaks the chain: the next checkpoints form a fresh
	// base+delta pair, and the old chain — no longer an ancestor of
	// anything retained — ages out entirely.
	if err := s.RestartFrom(ctx, store, "gen3"); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 6; i++ {
		if _, err := s.CheckpointTo(ctx, store, fmt.Sprintf("gen%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	names, err = store.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"gen4", "gen5"}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("old chain not pruned after rotation: %v", names)
	}
}

// TestDirStoreRetentionQuarantinedAncestor pins the edge where Scrub
// quarantines a mid-chain ancestor between two retention passes: the
// parent walk crosses the hole without crashing or looping, surviving
// descendants stay retained, the quarantined file itself is never
// pruned, and content-addressed chunk payloads sharing the directory
// are invisible to retention.
func TestDirStoreRetentionQuarantinedAncestor(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	store, err := NewDirStore(dir, 2, WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(WithIncremental(8))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := newIncrWorkload(t, s.Runtime())
	for i := 0; i < 4; i++ {
		w.step(t, i)
		if _, err := s.CheckpointTo(ctx, store, fmt.Sprintf("gen%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// A chunk payload in the same directory, as a CASStore layered over
	// this DirStore would leave. Ancient mtime: naive retention would
	// evict it first.
	chunkName := "cas-" + strings.Repeat("ab", 32)
	storePutBytes(t, store, chunkName, []byte("chunk payload"))
	old := time.Now().Add(-24 * time.Hour)
	os.Chtimes(filepath.Join(dir, chunkName+".img"), old, old)

	// Scrub quarantines gen1 mid-chain (rename, exactly what Scrub's
	// move-aside leaves behind): gen2 and gen3 now have a hole in their
	// recorded ancestry.
	if err := os.Rename(
		filepath.Join(dir, "gen1.img"),
		filepath.Join(dir, "gen1~quarantined.img"),
	); err != nil {
		t.Fatal(err)
	}

	// The next Put triggers retention. Keep=2 retains gen4+gen3; the
	// closure walks gen3→gen2→gen1: gen1 is quarantined (unreadable by
	// its live name), so the walk stops there — without error, without
	// touching the quarantined file, and without dropping gen2.
	w.step(t, 4)
	if _, err := s.CheckpointTo(ctx, store, "gen4"); err != nil {
		t.Fatal(err)
	}
	names, err := store.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var live []string
	for _, n := range names {
		if !strings.HasPrefix(n, "cas-") {
			live = append(live, n)
		}
	}
	if got := strings.Join(live, ","); got != "gen2,gen3,gen4" {
		t.Fatalf("List after quarantined-ancestor prune = %v, want [gen2 gen3 gen4]", names)
	}
	// The quarantined forensic copy survives, fetchable by exact name.
	rc, err := store.Get(ctx, "gen1~quarantined")
	if err != nil {
		t.Fatalf("quarantined ancestor pruned: %v", err)
	}
	rc.Close()
	// The chunk payload survives too: only the CAS layer's GC may
	// remove chunks, no matter how old they look.
	if got := storeGetBytes(t, store, chunkName); string(got) != "chunk payload" {
		t.Fatalf("chunk entry damaged by retention: %q", got)
	}
}
