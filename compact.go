package crac

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/dmtcp"
)

// CompactStats reports one Compact call.
type CompactStats struct {
	// Tip is the compacted chain's tip (now a self-contained base).
	Tip string
	// Depth is the chain depth that was squashed away (0 means the tip
	// was already a base and nothing happened).
	Depth int
	// Squashed lists the ancestors folded into the new base, tip-most
	// first; Deleted the subset actually removed, Retained the subset
	// kept because another lineage (or an unreadable entry, resolved
	// conservatively) still reaches them.
	Squashed []string
	Deleted  []string
	Retained []string
	// ChunksSwept counts unreferenced chunks GC'd when store is a
	// CASStore (0 otherwise).
	ChunksSwept int
}

// Compact squashes the delta chain under tip into a single
// self-contained base image, from stored bytes alone — the session
// that wrote the chain keeps running, keeps checkpointing, and is
// never paused or quiesced. The new base is written under the tip's
// own name with the tip's identity preserved, so a delta the live
// session records against the old tip (its parentID) still verifies
// and applies against the compacted base; deltas the session writes
// while Compact runs land on top untouched.
//
// Ancestors the squash strands are then condemned and deleted —
// unless some other lineage in the store still reaches them, the
// generalization of DirStore's retention rule: every live image's
// parent walk is traced, and any condemned member it crosses is
// retained. A walk that cannot be completed (unreadable entry)
// retains everything conservatively; Compact never trades safety for
// space. When store is a *CASStore, a chunk GC pass runs afterwards
// to sweep payload chunks only the condemned images referenced.
//
// The chain is verified (VerifyChain) before squashing; a corrupt
// member aborts with its error and the store unchanged. Run Compact
// from one maintenance owner per store — e.g. the Supervisor's
// CompactAfter hook — not concurrently with itself.
func Compact(ctx context.Context, store Store, tip string) (*CompactStats, error) {
	if err := validateImageName(tip); err != nil {
		return nil, err
	}
	st := &CompactStats{Tip: tip}

	timg, err := readStoredImage(ctx, store, tip)
	if err != nil {
		return nil, err
	}
	d := timg.Delta
	if d == nil || d.Parent == "" {
		return st, nil // already a base
	}
	tipID := d.ID()
	if tipID == 0 {
		return nil, fmt.Errorf("%w: tip %q carries no identity; compacting it would orphan its children", ErrDeltaChain, tip)
	}

	// Verify the whole chain first: a squash must only ever replace a
	// chain it could faithfully resolve.
	chain, err := VerifyChain(ctx, store, tip)
	if err != nil {
		return nil, err
	}
	st.Depth = len(chain) - 1
	st.Squashed = append(st.Squashed, chain[1:]...)

	// Materialize base + deltas and re-emit as a base under the tip's
	// identity. Mirror the chain's own encoding so later deltas keep
	// addressing the same shard grid.
	im, err := OpenImageFrom(ctx, store, tip)
	if err != nil {
		return nil, err
	}
	eng := &dmtcp.Engine{Gzip: timg.Gzip, ShardSize: d.ShardSize()}
	if err := store.Put(ctx, tip, func(w io.Writer) error {
		return eng.EncodeBase(ctx, w, im.img, tipID)
	}); err != nil {
		return nil, fmt.Errorf("crac: compact %q: writing base: %w", tip, err)
	}

	// Condemnation: the squashed ancestors are garbage unless some
	// other live image's lineage still runs through them. The new base
	// is already committed, so walks through tip stop there and never
	// keep the old chain alive.
	condemned := make(map[string]bool, len(st.Squashed))
	for _, n := range st.Squashed {
		condemned[n] = true
	}
	names, err := store.List(ctx)
	if err != nil {
		st.Retained = append(st.Retained, st.Squashed...)
		return st, nil // best-effort: space is reclaimable later
	}
	keep := make(map[string]bool)
	abort := false
	for _, n := range names {
		if condemned[n] {
			continue
		}
		cur := n
		seen := map[string]bool{n: true}
		for hops := 0; cur != "" && hops < maxLineageHops; hops++ {
			parent, perr := storedParent(ctx, store, cur)
			if perr != nil {
				if errors.Is(perr, ErrImageNotFound) {
					break // dangling parent: cannot be a condemned member
				}
				abort = true // unreadable lineage: retain everything
				break
			}
			if parent == "" || seen[parent] {
				break
			}
			seen[parent] = true
			if condemned[parent] {
				keep[parent] = true
			}
			cur = parent
		}
		if abort {
			break
		}
	}
	if abort {
		st.Retained = append(st.Retained, st.Squashed...)
		return st, nil
	}
	for _, n := range st.Squashed {
		if keep[n] {
			st.Retained = append(st.Retained, n)
			continue
		}
		if derr := store.Delete(ctx, n); derr != nil && !errors.Is(derr, ErrImageNotFound) {
			st.Retained = append(st.Retained, n)
			continue
		}
		st.Deleted = append(st.Deleted, n)
	}

	if cs := asCASStore(store); cs != nil {
		gcst, gerr := cs.GC(ctx)
		if gerr != nil {
			return st, nil // chunks stay; the next GC sweeps them
		}
		st.ChunksSwept = gcst.Swept
	}
	return st, nil
}

// asCASStore unwraps decorators (WithRetry) down to a *CASStore, or
// nil when there is none.
func asCASStore(store Store) *CASStore {
	for store != nil {
		if cs, ok := store.(*CASStore); ok {
			return cs
		}
		u, ok := store.(interface{ Unwrap() Store })
		if !ok {
			return nil
		}
		store = u.Unwrap()
	}
	return nil
}

// storedParent reads just the parent link of a stored image from its
// header ("" for a base).
func storedParent(ctx context.Context, store Store, name string) (string, error) {
	rc, err := store.Get(ctx, name)
	if err != nil {
		return "", wrapCancelled(err)
	}
	meta, err := dmtcp.ReadImageMeta(rc)
	rc.Close()
	if err != nil {
		return "", err
	}
	return meta.Parent, nil
}
