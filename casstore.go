package crac

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/cas"
	"repro/internal/dmtcp"
)

// BatchExister is the optional Store extension behind chunk-level
// dedup across the wire: ExistsBatch reports which of the named
// entries the store already holds, in one round trip. HTTPStore
// implements it over the netstore batch-exists endpoint; a CASStore
// layered on such a backing skips uploading chunks the destination
// already has — the mechanism that makes migration pre-copy and
// supervisor uploads resumable and delta-aware.
type BatchExister interface {
	ExistsBatch(ctx context.Context, names []string) (map[string]bool, error)
}

// existsBatchWindow bounds how many novel chunks a CASStore Put stages
// before asking the backing which of them already exist: large enough
// to amortize a round trip, small enough to cap staged memory at a few
// shards.
const existsBatchWindow = 16

// CASStore layers chunk-level content-addressed dedup over any backing
// Store. Images written through it are split on v3 shard-frame
// boundaries (internal/cas); each shard payload is stored once per
// unique content under a SHA-256 key in the backing's "cas-" chunk
// namespace, and the image entry itself becomes a small manifest.
// Identical shards dedup across images, delta chains, sessions, and
// tenants sharing the backing.
//
// Reads reconstruct transparently — Get, GetAt, and List behave like
// any Store, chunks stay hidden — and entries written before the
// CASStore was layered on (plain images in the backing) read back
// unchanged, so an existing store can adopt CAS in place.
//
// Deleting an image removes only its manifest; unreferenced chunks are
// swept by GC (Compact runs it after squashing a chain). Concurrent
// Put/Get against GC is safe on one CASStore instance; run GC from a
// single owner per backing.
type CASStore struct {
	backing Store

	// gcMu fences the sweep: Put and the read paths hold it shared,
	// GC exclusively, so a chunk can never disappear between an
	// existence check and the manifest commit that references it.
	gcMu sync.RWMutex

	// mu guards the present cache below.
	mu      sync.Mutex
	present map[string]bool // chunk names known to exist in the backing
	warmed  bool            // present was seeded from a backing List
}

// NewCASStore returns a content-addressed deduplicating store over
// backing. The backing store holds manifests under the image names and
// chunk payloads under reserved "cas-" names.
func NewCASStore(backing Store) *CASStore {
	return &CASStore{backing: backing, present: make(map[string]bool)}
}

// Backing returns the underlying store (manifests + chunk namespace).
func (s *CASStore) Backing() Store { return s.backing }

func (s *CASStore) knownPresent(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.present[name]
}

func (s *CASStore) markPresent(name string) {
	s.mu.Lock()
	s.present[name] = true
	s.mu.Unlock()
}

// warm seeds the present cache from one backing List, so re-uploads
// into a store that already holds chunks (a fresh process, a second
// migration) dedup from the first image on.
func (s *CASStore) warm(ctx context.Context) {
	s.mu.Lock()
	warmed := s.warmed
	s.mu.Unlock()
	if warmed {
		return
	}
	names, err := s.backing.List(ctx)
	if err != nil {
		return // uploads are idempotent; try warming again next Put
	}
	s.mu.Lock()
	for _, n := range names {
		if cas.IsChunkName(n) {
			s.present[n] = true
		}
	}
	s.warmed = true
	s.mu.Unlock()
}

// pendingChunk is one staged, not-yet-uploaded chunk of a Put.
type pendingChunk struct {
	name string
	buf  *[]byte
	n    int
}

// Put implements Store: the image write streams through the chunker,
// novel chunks are uploaded (in existence-checked batches), and the
// manifest commits last — so a failed write publishes nothing, and a
// committed manifest never references a chunk that was not durably
// stored first.
func (s *CASStore) Put(ctx context.Context, name string, write func(w io.Writer) error) error {
	if err := validateImageName(name); err != nil {
		return err
	}
	if cas.IsChunkName(name) {
		return fmt.Errorf("%w: image name %q collides with the chunk namespace", ErrBadImage, name)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.gcMu.RLock()
	defer s.gcMu.RUnlock()
	s.warm(ctx)

	var pending []pendingChunk
	inPending := make(map[string]bool)
	defer func() {
		for _, pc := range pending {
			cas.ReleaseBuf(pc.buf)
		}
	}()

	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		// Ask the backing (in one round trip, when it can answer) which
		// staged chunks it already holds; everything else uploads.
		var unknown []string
		for _, pc := range pending {
			if !s.knownPresent(pc.name) {
				unknown = append(unknown, pc.name)
			}
		}
		if be, ok := s.backing.(BatchExister); ok && len(unknown) > 0 {
			if have, err := be.ExistsBatch(ctx, unknown); err == nil {
				for n, ok := range have {
					if ok {
						s.markPresent(n)
					}
				}
			} else if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			// On a failed existence check, fall through and upload:
			// chunk writes are idempotent (same key, same bytes).
		}
		for i, pc := range pending {
			if s.knownPresent(pc.name) {
				cas.ReleaseBuf(pc.buf)
				pending[i].buf = nil
				continue
			}
			data := (*pc.buf)[:pc.n]
			err := s.backing.Put(ctx, pc.name, func(w io.Writer) error {
				_, werr := w.Write(data)
				return werr
			})
			cas.ReleaseBuf(pc.buf)
			pending[i].buf = nil
			if err != nil {
				return fmt.Errorf("storing chunk %s of %q: %w", pc.name, name, err)
			}
			s.markPresent(pc.name)
		}
		pending = pending[:0]
		for n := range inPending {
			delete(inPending, n)
		}
		return nil
	}

	ch := cas.NewChunker(func(chunk string, buf *[]byte, n int) error {
		if s.knownPresent(chunk) || inPending[chunk] {
			cas.ReleaseBuf(buf)
			return nil
		}
		pending = append(pending, pendingChunk{name: chunk, buf: buf, n: n})
		inPending[chunk] = true
		if len(pending) >= existsBatchWindow {
			return flush()
		}
		return nil
	})
	if err := write(ch); err != nil {
		return err
	}
	man, err := ch.Finish()
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	return s.backing.Put(ctx, name, man.Encode)
}

// readManifest fetches and decodes the manifest stored under name;
// (nil, nil) when the entry is not a manifest (a pre-CAS image).
func (s *CASStore) readManifest(ctx context.Context, name string) (*cas.Manifest, []byte, error) {
	rc, err := s.backing.Get(ctx, name)
	if err != nil {
		return nil, nil, err
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		return nil, nil, err
	}
	if !cas.IsManifestHeader(data) {
		return nil, data, nil
	}
	man, err := cas.DecodeManifest(bytes.NewReader(data))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: manifest %q: %v", ErrCorruptImage, name, err)
	}
	return man, data, nil
}

// Get implements Store. A manifest entry is reconstructed from its
// chunks eagerly, under the GC fence, so the returned stream can never
// observe a concurrent sweep; a non-manifest entry passes through
// verbatim.
func (s *CASStore) Get(ctx context.Context, name string) (io.ReadCloser, error) {
	if err := validateImageName(name); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.gcMu.RLock()
	defer s.gcMu.RUnlock()
	man, raw, err := s.readManifest(ctx, name)
	if err != nil {
		return nil, err
	}
	if man == nil {
		return io.NopCloser(bytes.NewReader(raw)), nil
	}
	out := bytes.NewBuffer(make([]byte, 0, man.Length))
	for i := range man.Segments {
		seg := &man.Segments[i]
		if !seg.IsChunk() {
			out.Write(seg.Inline)
			continue
		}
		if err := s.appendChunk(ctx, out, seg, name); err != nil {
			return nil, err
		}
	}
	return io.NopCloser(bytes.NewReader(out.Bytes())), nil
}

// appendChunk streams one referenced chunk into out, verifying its
// recorded length.
func (s *CASStore) appendChunk(ctx context.Context, out *bytes.Buffer, seg *cas.Segment, name string) error {
	cname := seg.ChunkName()
	rc, err := s.backing.Get(ctx, cname)
	if err != nil {
		if errors.Is(err, ErrImageNotFound) {
			return fmt.Errorf("%w: %q references missing chunk %s", ErrCorruptImage, name, cname)
		}
		return err
	}
	n, cerr := io.Copy(out, rc)
	rc.Close()
	if cerr != nil {
		return cerr
	}
	if uint64(n) != seg.Length {
		return fmt.Errorf("%w: chunk %s holds %d bytes, manifest %q expects %d",
			ErrCorruptImage, cname, n, name, seg.Length)
	}
	return nil
}

// List implements Store: the backing's names minus the chunk
// namespace.
func (s *CASStore) List(ctx context.Context) ([]string, error) {
	names, err := s.backing.List(ctx)
	if err != nil {
		return nil, err
	}
	out := names[:0]
	for _, n := range names {
		if !cas.IsChunkName(n) {
			out = append(out, n)
		}
	}
	return out, nil
}

// Delete implements Store: it removes the manifest only. Chunks the
// image referenced stay until GC proves nothing else references them.
func (s *CASStore) Delete(ctx context.Context, name string) error {
	return s.backing.Delete(ctx, name)
}

// GetAt implements RandomAccessStore. A manifest entry yields a lazy
// reader that faults referenced chunks on demand (with a small
// per-handle cache), so a lazy restart over a CASStore fetches only
// the chunks its shards actually touch; non-manifest entries delegate
// to the backing.
func (s *CASStore) GetAt(ctx context.Context, name string) (ReaderAtCloser, int64, error) {
	if err := validateImageName(name); err != nil {
		return nil, 0, err
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	s.gcMu.RLock()
	defer s.gcMu.RUnlock()
	ra, size, err := openImageAt(ctx, s.backing, name)
	if err != nil {
		return nil, 0, err
	}
	var head [8]byte
	n, _ := ra.ReadAt(head[:], 0)
	if !cas.IsManifestHeader(head[:n]) {
		return ra, size, nil
	}
	manBytes := make([]byte, size)
	if _, err := ra.ReadAt(manBytes, 0); err != nil && err != io.EOF {
		ra.Close()
		return nil, 0, err
	}
	ra.Close()
	man, err := cas.DecodeManifest(bytes.NewReader(manBytes))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: manifest %q: %v", ErrCorruptImage, name, err)
	}
	r := &casReaderAt{ctx: ctx, s: s, name: name, size: int64(man.Length),
		segs: man.Segments, offs: make([]uint64, len(man.Segments)),
		cache: make(map[string][]byte)}
	var off uint64
	for i := range man.Segments {
		r.offs[i] = off
		off += man.Segments[i].Length
	}
	return r, r.size, nil
}

// casReaderCacheChunks bounds a handle's chunk cache: enough to serve
// a prefetcher's sliding window without re-fetching, small enough that
// a thousand concurrent lazy restores stay bounded.
const casReaderCacheChunks = 8

// casReaderAt serves random-access reads through a manifest. Safe for
// concurrent ReadAt, like every store handle.
type casReaderAt struct {
	ctx  context.Context
	s    *CASStore
	name string
	segs []cas.Segment
	offs []uint64 // start offset of each segment
	size int64

	mu    sync.Mutex
	cache map[string][]byte
	order []string
}

func (r *casReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("crac: %q: negative read offset %d", r.name, off)
	}
	if off >= r.size {
		return 0, io.EOF
	}
	want := len(p)
	if max := r.size - off; int64(len(p)) > max {
		p = p[:max]
	}
	n := 0
	for n < len(p) {
		pos := uint64(off) + uint64(n)
		i := sort.Search(len(r.offs), func(i int) bool { return r.offs[i] > pos }) - 1
		seg := &r.segs[i]
		src := seg.Inline
		if seg.IsChunk() {
			b, err := r.chunk(seg)
			if err != nil {
				return n, err
			}
			src = b
		}
		n += copy(p[n:], src[pos-r.offs[i]:])
	}
	if n < want {
		return n, io.EOF
	}
	return n, nil
}

// chunk fetches (and caches) one referenced chunk, under the GC fence.
func (r *casReaderAt) chunk(seg *cas.Segment) ([]byte, error) {
	name := seg.ChunkName()
	r.mu.Lock()
	if b, ok := r.cache[name]; ok {
		r.mu.Unlock()
		return b, nil
	}
	r.mu.Unlock()
	r.s.gcMu.RLock()
	rc, err := r.s.backing.Get(r.ctx, name)
	if err != nil {
		r.s.gcMu.RUnlock()
		if errors.Is(err, ErrImageNotFound) {
			return nil, fmt.Errorf("%w: %q references missing chunk %s", ErrCorruptImage, r.name, name)
		}
		return nil, err
	}
	b, rerr := io.ReadAll(rc)
	rc.Close()
	r.s.gcMu.RUnlock()
	if rerr != nil {
		return nil, rerr
	}
	if uint64(len(b)) != seg.Length {
		return nil, fmt.Errorf("%w: chunk %s holds %d bytes, manifest %q expects %d",
			ErrCorruptImage, name, len(b), r.name, seg.Length)
	}
	r.mu.Lock()
	if len(r.order) >= casReaderCacheChunks {
		delete(r.cache, r.order[0])
		r.order = r.order[1:]
	}
	r.cache[name] = b
	r.order = append(r.order, name)
	r.mu.Unlock()
	return b, nil
}

func (r *casReaderAt) Close() error { return nil }

// GCStats reports one chunk garbage collection pass.
type GCStats struct {
	// Manifests is the number of manifest entries scanned for
	// references; Chunks the chunk entries found.
	Manifests int
	Chunks    int
	// Swept counts the unreferenced chunks removed.
	Swept int
}

// GC sweeps chunks no manifest references. It takes the store's write
// fence exclusively: no Put, Get, or chunk fault runs concurrently, so
// a chunk referenced by any live manifest — including one mid-commit —
// is never collected. Entries that are not manifests (pre-CAS images,
// foreign bytes) hold no references and are left alone.
func (s *CASStore) GC(ctx context.Context) (GCStats, error) {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	var st GCStats
	names, err := s.backing.List(ctx)
	if err != nil {
		return st, err
	}
	referenced := make(map[string]bool)
	var chunks []string
	for _, n := range names {
		if cas.IsChunkName(n) {
			chunks = append(chunks, n)
			continue
		}
		man, _, err := s.readManifest(ctx, n)
		if err != nil {
			if errors.Is(err, ErrImageNotFound) {
				continue // raced a concurrent external delete
			}
			// An unreadable entry might reference anything: sweeping
			// now could collect a live chunk. Abort conservatively.
			return st, fmt.Errorf("crac: gc: reading %q: %w", n, err)
		}
		if man == nil {
			continue
		}
		st.Manifests++
		for _, ref := range man.ChunkRefs() {
			referenced[ref] = true
		}
	}
	st.Chunks = len(chunks)
	for _, c := range chunks {
		if referenced[c] {
			continue
		}
		if err := s.backing.Delete(ctx, c); err != nil && !errors.Is(err, ErrImageNotFound) {
			return st, fmt.Errorf("crac: gc: sweeping %s: %w", c, err)
		}
		s.mu.Lock()
		delete(s.present, c)
		s.mu.Unlock()
		st.Swept++
	}
	return st, nil
}

// DedupLineage is one delta lineage in a DedupStats report: the name
// of a chain tip (an image no other image names as parent) and its
// chain depth.
type DedupLineage struct {
	Tip   string
	Depth int
}

// DedupStats reports how much a store dedups: the bytes its manifests
// logically reference versus the unique chunk bytes actually stored.
type DedupStats struct {
	// Images counts non-chunk entries; Manifests the subset stored
	// content-addressed.
	Images    int
	Manifests int
	// Chunks / ChunkRefs count unique chunks referenced vs total
	// references to them.
	Chunks    int
	ChunkRefs int
	// UniqueChunkBytes is each referenced chunk counted once —
	// what the chunk namespace stores. ReferencedChunkBytes counts
	// every reference — what a non-deduplicating store would hold.
	UniqueChunkBytes     uint64
	ReferencedChunkBytes uint64
	// InlineBytes are manifest-inline stream bytes (headers, trailers).
	InlineBytes uint64
	// Orphans counts stored chunks no manifest references (pending GC).
	Orphans int
	// Lineages lists every chain tip with its depth.
	Lineages []DedupLineage
}

// Ratio is the chunk dedup factor: referenced over unique bytes (1
// when nothing dedups, 0 when the store holds no chunks).
func (d *DedupStats) Ratio() float64 {
	if d.UniqueChunkBytes == 0 {
		return 0
	}
	return float64(d.ReferencedChunkBytes) / float64(d.UniqueChunkBytes)
}

// DedupReport scans a store and reports its dedup ratio and chain
// depths. Pass the CASStore itself (its backing is scanned) or any
// plain Store (chunk stats are then zero, lineages still reported).
func DedupReport(ctx context.Context, store Store) (*DedupStats, error) {
	backing := store
	if cs, ok := store.(*CASStore); ok {
		backing = cs.backing
	}
	names, err := backing.List(ctx)
	if err != nil {
		return nil, err
	}
	st := &DedupStats{}
	uniq := make(map[string]uint64) // chunk name -> size
	stored := make(map[string]bool) // chunk entries present in the backing
	parentOf := make(map[string]string)
	depthOf := make(map[string]int)
	hasChild := make(map[string]bool)
	for _, n := range names {
		if cas.IsChunkName(n) {
			stored[n] = true
			continue
		}
		st.Images++
		rc, err := backing.Get(ctx, n)
		if err != nil {
			if errors.Is(err, ErrImageNotFound) {
				continue
			}
			return nil, err
		}
		br := bufio.NewReader(rc)
		head, _ := br.Peek(8)
		if cas.IsManifestHeader(head) {
			man, err := cas.DecodeManifest(br)
			rc.Close()
			if err != nil {
				return nil, fmt.Errorf("manifest %q: %w", n, err)
			}
			st.Manifests++
			parentOf[n] = man.Parent
			depthOf[n] = man.Depth
			for i := range man.Segments {
				seg := &man.Segments[i]
				if !seg.IsChunk() {
					st.InlineBytes += seg.Length
					continue
				}
				st.ChunkRefs++
				st.ReferencedChunkBytes += seg.Length
				uniq[seg.ChunkName()] = seg.Length
			}
			continue
		}
		meta, err := dmtcp.ReadImageMeta(br)
		rc.Close()
		if err == nil {
			parentOf[n] = meta.Parent
			depthOf[n] = meta.Depth
		}
	}
	st.Chunks = len(uniq)
	for _, size := range uniq {
		st.UniqueChunkBytes += size
	}
	for c := range stored {
		if _, ok := uniq[c]; !ok {
			st.Orphans++
		}
	}
	for _, p := range parentOf {
		if p != "" {
			hasChild[p] = true
		}
	}
	for n := range parentOf {
		if !hasChild[n] {
			st.Lineages = append(st.Lineages, DedupLineage{Tip: n, Depth: depthOf[n]})
		}
	}
	sort.Slice(st.Lineages, func(i, j int) bool { return st.Lineages[i].Tip < st.Lineages[j].Tip })
	return st, nil
}
