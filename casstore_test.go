package crac

// Tests for the content-addressed store layer (ISSUE 9): the ≥5×
// stored-bytes reduction for mostly-identical sessions, GC safety for
// shared chunks, and full checkpoint/restore + chain verification
// through manifests.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/cas"
)

// storeTotalBytes sums the size of every entry in a store, chunks and
// manifests included.
func storeTotalBytes(t testing.TB, s Store) int64 {
	t.Helper()
	names, err := s.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range names {
		total += storeImageSize(t, s, n)
	}
	return total
}

// backingTotalBytes is storeTotalBytes over a CASStore's backing (so
// chunk entries count).
func backingTotalBytes(t testing.TB, cs *CASStore) int64 {
	t.Helper()
	return storeTotalBytes(t, cs.Backing())
}

// TestCASDedupAcrossSessions pins the headline acceptance bound: two
// sessions whose state is 97% identical, each taking three full
// checkpoints, store ≥5× fewer bytes through a CASStore than through a
// plain store.
func TestCASDedupAcrossSessions(t *testing.T) {
	ctx := context.Background()
	plain := NewMemStore()
	cstore := NewCASStore(NewMemStore())

	var sessions []*Session
	for i := 0; i < 2; i++ {
		s, err := New(WithShardSize(64<<10), WithIncremental(64))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		newIncrWorkload(t, s.Runtime())
		sessions = append(sessions, s)
	}
	// Perturb ~3% of the second session's state so the two are
	// mostly-identical, not identical: one extra allocation dirtied.
	{
		rt := sessions[1].Runtime()
		h, err := rt.HostAlloc(192 << 10)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Memset(h, 0x5A, 192<<10); err != nil {
			t.Fatal(err)
		}
	}

	for i, s := range sessions {
		for g := 0; g < 3; g++ {
			name := fmt.Sprintf("s%d-gen%d", i, g)
			for _, store := range []Store{plain, Store(cstore)} {
				// Rebase forces every checkpoint to a self-contained
				// base: the re-stored-per-image worst case the CAS layer
				// exists to collapse (and it keeps the two stores'
				// lineages independent).
				s.Rebase()
				if _, err := s.CheckpointTo(ctx, store, name+storeTag(store)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	plainBytes := storeTotalBytes(t, plain)
	casBytes := backingTotalBytes(t, cstore)
	if casBytes*5 > plainBytes {
		t.Fatalf("CAS stored %d bytes vs plain %d — less than the required 5× reduction (%.2fx)",
			casBytes, plainBytes, float64(plainBytes)/float64(casBytes))
	}

	// Every image reads back from the CAS store and verifies end to end.
	names, err := cstore.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 6 {
		t.Fatalf("CAS store lists %d images, want 6 (chunks must stay hidden): %v", len(names), names)
	}
	for _, n := range names {
		if cas.IsChunkName(n) {
			t.Fatalf("List leaked chunk entry %q", n)
		}
		if _, err := VerifyChain(ctx, cstore, n); err != nil {
			t.Fatalf("VerifyChain(%q) over manifests: %v", n, err)
		}
	}

	// The report agrees: dedup factor well above 5 on chunk bytes.
	rep, err := DedupReport(ctx, cstore)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Manifests != 6 || rep.Chunks == 0 {
		t.Fatalf("DedupReport = %+v, want 6 manifests and chunks", rep)
	}
	if rep.Ratio() < 5 {
		t.Fatalf("DedupReport ratio %.2f, want ≥ 5", rep.Ratio())
	}
	if len(rep.Lineages) != 6 {
		t.Fatalf("DedupReport lineages = %d, want 6 bases", len(rep.Lineages))
	}
}

// storeTag distinguishes the duplicate checkpoint names written to the
// two stores in the dedup test (a session may not write the same name
// twice into one lineage namespace).
func storeTag(s Store) string {
	if _, ok := s.(*CASStore); ok {
		return "-cas"
	}
	return ""
}

// TestCASRestoreRoundTrip proves a checkpoint chain written through a
// CASStore restores byte-identically, including the lazy random-access
// path through manifests.
func TestCASRestoreRoundTrip(t *testing.T) {
	ctx := context.Background()
	cstore := NewCASStore(NewMemStore())
	s, err := New(WithShardSize(64<<10), WithIncremental(8))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := newIncrWorkload(t, s.Runtime())
	tip := "gen0"
	if _, err := s.CheckpointTo(ctx, cstore, tip); err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		w.step(t, round)
		tip = fmt.Sprintf("gen%d", round)
		if st, err := s.CheckpointTo(ctx, cstore, tip); err != nil || !st.Delta {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	want := snapshotRegions(t, s)

	restored, err := RestoreFrom(ctx, cstore, tip)
	if err != nil {
		t.Fatalf("RestoreFrom through CAS manifests: %v", err)
	}
	defer restored.Close()
	got := snapshotRegions(t, restored)
	if len(got) != len(want) {
		t.Fatalf("restored %d regions, want %d", len(got), len(want))
	}
	for start, b := range want {
		if !bytes.Equal(got[start], b) {
			t.Fatalf("region %#x differs after restore through CAS", start)
		}
	}
	if _, err := restored.Runtime().Malloc(4096); err != nil {
		t.Fatal(err)
	}
}

// TestCASGetAtThroughManifest exercises RandomAccessStore.GetAt over a
// real checkpoint image: the reconstructed random-access view must
// match the eager Get byte for byte.
func TestCASGetAtThroughManifest(t *testing.T) {
	ctx := context.Background()
	cstore := NewCASStore(NewMemStore())
	s, err := New(WithShardSize(64<<10), WithIncremental(8))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	newIncrWorkload(t, s.Runtime())
	if _, err := s.CheckpointTo(ctx, cstore, "img"); err != nil {
		t.Fatal(err)
	}
	whole := conformGet(t, cstore, "img")
	ra, size, err := cstore.GetAt(ctx, "img")
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	if size != int64(len(whole)) {
		t.Fatalf("GetAt size %d, Get size %d", size, len(whole))
	}
	// Sparse reads at shard-ish granularity, as a lazy restart would.
	for off := int64(0); off < size; off += 61 << 10 {
		n := int64(48 << 10)
		if off+n > size {
			n = size - off
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(io.NewSectionReader(ra, off, n), buf); err != nil {
			t.Fatalf("ReadAt(%d+%d): %v", off, n, err)
		}
		if !bytes.Equal(buf, whole[off:off+n]) {
			t.Fatalf("ReadAt(%d+%d): bytes differ from Get", off, n)
		}
	}
}

// TestCASGCSafety pins the GC invariant: a chunk referenced by any
// live manifest survives every GC pass; unreferenced chunks (deleted
// images, failed Puts) are swept.
func TestCASGCSafety(t *testing.T) {
	ctx := context.Background()
	cstore := NewCASStore(NewMemStore())
	s, err := New(WithShardSize(64<<10), WithIncremental(64))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	newIncrWorkload(t, s.Runtime())

	// Two images sharing almost all chunks.
	for _, name := range []string{"a", "b"} {
		s.Rebase()
		if _, err := s.CheckpointTo(ctx, cstore, name); err != nil {
			t.Fatal(err)
		}
	}
	// Plus orphans from a Put that failed mid-write.
	boom := errors.New("boom")
	err = cstore.Put(ctx, "broken", func(w io.Writer) error {
		img := conformGet(t, cstore, "a")
		w.Write(img[:len(img)/2])
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("failed Put = %v", err)
	}
	if _, err := cstore.Get(ctx, "broken"); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("failed Put published a manifest: %v", err)
	}

	wantA := conformGet(t, cstore, "a")
	st, err := cstore.GC(ctx)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if st.Manifests != 2 {
		t.Fatalf("GC scanned %d manifests, want 2", st.Manifests)
	}
	// Both images still read back identical after the sweep.
	if got := conformGet(t, cstore, "a"); !bytes.Equal(got, wantA) {
		t.Fatal("image bytes changed across GC")
	}
	if _, err := VerifyChain(ctx, cstore, "b"); err != nil {
		t.Fatalf("VerifyChain after GC: %v", err)
	}

	// Deleting one image must not break the other (shared chunks stay).
	if err := cstore.Delete(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := cstore.GC(ctx); err != nil {
		t.Fatal(err)
	}
	if got := conformGet(t, cstore, "a"); !bytes.Equal(got, wantA) {
		t.Fatal("deleting a sibling image corrupted the survivor")
	}

	// Deleting the last image lets GC empty the chunk namespace.
	if err := cstore.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	gst, err := cstore.GC(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gst.Swept == 0 {
		t.Fatal("GC swept nothing after the last manifest was deleted")
	}
	left, err := cstore.Backing().List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("backing still holds %d entries after final GC: %v", len(left), left)
	}
}

// TestCASRejectsChunkNamespaceCollision: image names must not be able
// to alias chunk entries.
func TestCASRejectsChunkNamespaceCollision(t *testing.T) {
	cstore := NewCASStore(NewMemStore())
	name := cas.ChunkName([32]byte{1})
	err := cstore.Put(context.Background(), name, func(w io.Writer) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "chunk namespace") {
		t.Fatalf("Put(%q) = %v, want chunk-namespace rejection", name, err)
	}
}

// TestCASPreexistingPlainImages: a CASStore layered over a backing
// that already holds plain (pre-CAS) images serves them unchanged.
func TestCASPreexistingPlainImages(t *testing.T) {
	ctx := context.Background()
	backing := NewMemStore()
	want := []byte("plain old bytes, not a manifest")
	conformPut(t, backing, "legacy", want)
	cstore := NewCASStore(backing)
	if got := conformGet(t, cstore, "legacy"); !bytes.Equal(got, want) {
		t.Fatalf("legacy entry = %q, want %q", got, want)
	}
	ra, size, err := cstore.GetAt(ctx, "legacy")
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	buf := make([]byte, size)
	if _, err := ra.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("legacy entry differs through GetAt")
	}
}
