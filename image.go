package crac

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/cracplugin"
	"repro/internal/cuda"
	"repro/internal/dmtcp"
	"repro/internal/replaylog"
)

// KernelRegistry maps module names to kernel tables — the simulation's
// stand-in for the device code in the application's text segment. A
// restored process hands its registry to Restore / RestoreFrom (via
// WithKernels) so log replay can resolve every RegisterFunction entry.
type KernelRegistry struct {
	modules map[string]map[string]cuda.Kernel
}

// NewKernelRegistry returns an empty registry.
func NewKernelRegistry() *KernelRegistry {
	return &KernelRegistry{modules: make(map[string]map[string]cuda.Kernel)}
}

// Add registers one kernel under module/name and returns the registry
// for chaining.
func (r *KernelRegistry) Add(module, name string, k cuda.Kernel) *KernelRegistry {
	mod, ok := r.modules[module]
	if !ok {
		mod = make(map[string]cuda.Kernel)
		r.modules[module] = mod
	}
	mod[name] = k
	return r
}

// AddTable registers a whole kernel table under module (the form
// workloads export) and returns the registry for chaining.
func (r *KernelRegistry) AddTable(module string, funcs map[string]cuda.Kernel) *KernelRegistry {
	for name, k := range funcs {
		r.Add(module, name, k)
	}
	return r
}

// Modules returns the registered module names (unordered).
func (r *KernelRegistry) Modules() []string {
	out := make([]string, 0, len(r.modules))
	for m := range r.modules {
		out = append(out, m)
	}
	return out
}

// clone snapshots the registry so later mutation by the caller cannot
// race a session using it.
func (r *KernelRegistry) clone() *KernelRegistry {
	if r == nil {
		return nil
	}
	out := NewKernelRegistry()
	for m, funcs := range r.modules {
		out.AddTable(m, funcs)
	}
	return out
}

// Image is a parsed checkpoint image, opened without restoring it:
// a first-class, inspectable artifact. Use OpenImage / OpenImageFile /
// OpenImageFrom to obtain one, Info and Log to inspect it, and
// Session.RestartImage or RestoreImage to bring it back to life.
type Image struct {
	img *dmtcp.Image
}

// OpenImage parses a checkpoint image from r. It understands both the
// v1 serial and the v2 chunked format; failures classify as ErrBadImage
// or ErrUnsupportedVersion.
func OpenImage(r io.Reader) (*Image, error) {
	img, err := dmtcp.ReadImage(r)
	if err != nil {
		return nil, err
	}
	return &Image{img: img}, nil
}

// OpenImageFile parses a checkpoint image from a file.
func OpenImageFile(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return OpenImage(f)
}

// sectionMergers materializes plugin-owned opaque sections when a delta
// chain is resolved.
var sectionMergers = map[string]dmtcp.SectionMerger{
	cracplugin.SectionDevMem2: cracplugin.MergeDevMem,
}

// OpenImageFrom parses the named checkpoint image out of a Store. A v3
// delta image is materialized transparently: its parent chain is
// followed (by name, through the same Store) back to the base and the
// deltas are folded forward, yielding a complete image. A missing or
// cyclic parent reports ErrDeltaChain.
func OpenImageFrom(ctx context.Context, store Store, name string) (*Image, error) {
	rc, err := store.Get(ctx, name)
	if err != nil {
		return nil, wrapCancelled(err)
	}
	img, err := dmtcp.ReadImage(rc)
	rc.Close()
	if err != nil {
		return nil, err
	}
	img, err = dmtcp.ResolveChain(img, func(parent string) (io.ReadCloser, error) {
		return store.Get(ctx, parent)
	}, sectionMergers)
	if err != nil {
		return nil, wrapCancelled(err)
	}
	return &Image{img: img}, nil
}

// ImageRegion describes one upper-half memory region inside an image.
type ImageRegion struct {
	Start uint64
	Len   uint64
	Prot  string
	Label string
}

// ImageSection describes one plugin payload section inside an image.
type ImageSection struct {
	Name string
	Size int
}

// ImageInfo is the static shape of a checkpoint image: format, memory
// layout, and payload sections — everything knowable without decoding
// the CUDA call log.
type ImageInfo struct {
	Version     int
	Gzip        bool
	Regions     []ImageRegion
	Sections    []ImageSection
	RegionBytes uint64

	// Verified reports that the image stream carried an integrity
	// trailer and its whole-image checksum matched when the image was
	// read. False for legacy (pre-trailer) images and the v1+gzip
	// layout, whose gzip CRC covers the body instead.
	Verified bool

	// Incremental (v3) lineage. Delta marks a delta image; Parent names
	// the image it applies on top of; DeltaDepth is its distance from
	// the chain's base. DirtyRatio is the fraction of the checkpointed
	// payload the image actually carries (ShardsEmitted of ShardsTotal
	// shards) — 1 for full images. Materialized reports whether the
	// payload is complete (always true except for a delta opened
	// outside its Store).
	Delta         bool
	Parent        string
	DeltaDepth    int
	ShardsTotal   int
	ShardsEmitted int
	DirtyRatio    float64
	Materialized  bool
}

// Info summarizes the image.
func (im *Image) Info() ImageInfo {
	info := ImageInfo{
		Version:      im.img.Version,
		Gzip:         im.img.Gzip,
		Verified:     im.img.Verified,
		RegionBytes:  im.img.TotalRegionBytes(),
		DirtyRatio:   1,
		Materialized: true,
	}
	if d := im.img.Delta; d != nil {
		info.Delta = d.Depth > 0 || d.Parent != ""
		info.Parent = d.Parent
		info.DeltaDepth = d.Depth
		info.ShardsTotal = d.ShardsTotal
		info.ShardsEmitted = d.ShardsEmitted
		info.DirtyRatio = d.DirtyRatio()
		info.Materialized = d.Materialized
	}
	for _, r := range im.img.Regions {
		info.Regions = append(info.Regions, ImageRegion{
			Start: r.Start, Len: r.Len, Prot: fmt.Sprintf("%v", r.Prot), Label: r.Label,
		})
	}
	for _, name := range im.img.Sections.Names() {
		data, _ := im.img.Sections.Get(name)
		info.Sections = append(info.Sections, ImageSection{Name: name, Size: len(data)})
	}
	if len(info.Sections) == 0 && im.img.Delta != nil && !im.img.Delta.Materialized {
		// A bare delta's section bytes are unavailable, but its header
		// table still describes the layout.
		for _, sh := range im.img.Delta.SectionLayout() {
			info.Sections = append(info.Sections, ImageSection{Name: sh.Name, Size: int(sh.Size)})
		}
	}
	return info
}

// Section returns the raw bytes of a named payload section.
func (im *Image) Section(name string) ([]byte, bool) {
	return im.img.Sections.Get(name)
}

// AllocClass summarizes one class of active CUDA allocations.
type AllocClass struct {
	Buffers int
	Bytes   uint64
}

// ModuleInfo summarizes one registered fat binary.
type ModuleInfo struct {
	Module  string
	Kernels int
}

// ImageLog summarizes the CUDA call log carried in an image: the replay
// workload a restore implies, and the resources active at checkpoint.
type ImageLog struct {
	Entries int
	Device  AllocClass // cudaMalloc
	Pinned  AllocClass // cudaMallocHost
	Host    AllocClass // cudaHostAlloc
	Managed AllocClass // cudaMallocManaged
	Streams int
	Events  int
	Modules []ModuleInfo
}

func (im *Image) decodeLog() (*replaylog.Log, error) {
	logBytes, ok := im.img.Sections.Get(cracplugin.SectionLog)
	if !ok {
		return nil, nil
	}
	log, err := replaylog.Decode(bytes.NewReader(logBytes))
	if err != nil {
		return nil, fmt.Errorf("%w: decoding call log: %v", ErrBadImage, err)
	}
	return log, nil
}

func allocClass(as []replaylog.Allocation) AllocClass {
	c := AllocClass{Buffers: len(as)}
	for _, a := range as {
		c.Bytes += a.Size
	}
	return c
}

// Log decodes and summarizes the image's CUDA call log. Images without
// a log section (not written by the CRAC plugin) return (nil, nil).
func (im *Image) Log() (*ImageLog, error) {
	log, err := im.decodeLog()
	if log == nil || err != nil {
		return nil, err
	}
	as := log.Active()
	il := &ImageLog{
		Entries: log.Len(),
		Device:  allocClass(as.Device),
		Pinned:  allocClass(as.Pinned),
		Host:    allocClass(as.Host),
		Managed: allocClass(as.Managed),
		Streams: len(as.Streams),
		Events:  len(as.Events),
	}
	for _, fb := range as.FatBins {
		il.Modules = append(il.Modules, ModuleInfo{Module: fb.Module, Kernels: len(fb.Functions)})
	}
	return il, nil
}

// LogEntries renders every call-log entry as text, for dump tooling
// (cracinspect -log). Images without a log section return (nil, nil).
func (im *Image) LogEntries() ([]string, error) {
	log, err := im.decodeLog()
	if log == nil || err != nil {
		return nil, err
	}
	entries := log.Entries()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.String()
	}
	return out, nil
}
