package crac

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// poolTestOpts keeps pooled test sessions small: serial pipeline,
// shrunken lower-half arenas.
func poolTestOpts() []Option {
	return []Option{WithWorkers(1), WithArenaChunks(256<<10, 128<<10, 256<<10)}
}

// fillHost allocates one host buffer on the pooled session and fills
// it with pat.
func fillHost(t *testing.T, ps *PoolSession, size uint64, pat byte) uint64 {
	t.Helper()
	rt := ps.Session().Runtime()
	h, err := rt.HostAlloc(size)
	if err != nil {
		t.Fatalf("HostAlloc: %v", err)
	}
	if err := rt.Memset(h, pat, size); err != nil {
		t.Fatalf("Memset: %v", err)
	}
	return h
}

func hostByte(t *testing.T, ps *PoolSession, addr uint64) byte {
	t.Helper()
	b, err := ps.Session().Runtime().HostAccess(addr, 1, false)
	if err != nil {
		t.Fatalf("HostAccess: %v", err)
	}
	return b[0]
}

func TestPoolCheckpointRestart(t *testing.T) {
	ctx := context.Background()
	store := NewMemStore()
	p, err := NewPool(store, WithPoolSessionOptions(poolTestOpts()...))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	type client struct {
		ps   *PoolSession
		addr uint64
		pat  byte
	}
	var clients []client
	for i, tenant := range []string{"alice", "alice", "bob"} {
		ps, err := p.Open(tenant)
		if err != nil {
			t.Fatalf("Open(%s): %v", tenant, err)
		}
		defer ps.Close()
		pat := byte(0x40 + i)
		addr := fillHost(t, ps, 64<<10, pat)
		if _, err := ps.Checkpoint(ctx, fmt.Sprintf("gen%d", i)); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
		clients = append(clients, client{ps, addr, pat})
	}

	// Images are tenant-scoped in the shared store and unscoped per
	// session.
	names, err := store.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"alice--gen0": true, "alice--gen1": true, "bob--gen2": true}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected stored name %q", n)
		}
		delete(want, n)
	}
	for n := range want {
		t.Errorf("missing stored name %q", n)
	}
	imgs, err := clients[2].ps.Images(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 1 || imgs[0] != "gen2" {
		t.Errorf("bob Images = %v, want [gen2]", imgs)
	}

	// Mutate, restart, verify the checkpointed byte came back.
	for i, c := range clients {
		if err := c.ps.Session().Runtime().Memset(c.addr, 0xEE, 64<<10); err != nil {
			t.Fatal(err)
		}
		if err := c.ps.Restart(ctx, fmt.Sprintf("gen%d", i)); err != nil {
			t.Fatalf("Restart: %v", err)
		}
		if got := hostByte(t, c.ps, c.addr); got != c.pat {
			t.Errorf("client %d: restored byte %#x, want %#x", i, got, c.pat)
		}
	}

	st := p.Stats()
	if st.Checkpoints != 3 || st.Restarts != 3 {
		t.Errorf("Stats: %d checkpoints / %d restarts, want 3/3", st.Checkpoints, st.Restarts)
	}
	if st.Tenants != 2 || st.Sessions != 3 {
		t.Errorf("Stats: %d tenants / %d sessions, want 2/3", st.Tenants, st.Sessions)
	}
	if st.StoredBytes <= 0 {
		t.Errorf("Stats.StoredBytes = %d, want > 0", st.StoredBytes)
	}
	if st.CheckpointP50 <= 0 || st.CheckpointP99 < st.CheckpointP50 {
		t.Errorf("latency percentiles out of order: p50=%v p99=%v", st.CheckpointP50, st.CheckpointP99)
	}
	ts, ok := p.TenantStats("alice")
	if !ok || ts.Checkpoints != 2 || ts.Sessions != 2 {
		t.Errorf("TenantStats(alice) = %+v ok=%v, want 2 checkpoints / 2 sessions", ts, ok)
	}
	if _, ok := p.TenantStats("nobody"); ok {
		t.Error("TenantStats(nobody) reported ok")
	}
	if got := p.RetainedPages(); got != 0 {
		t.Errorf("RetainedPages = %d at rest, want 0", got)
	}
}

func TestPoolSessionQuotas(t *testing.T) {
	p, err := NewPool(NewMemStore(),
		WithPoolSessionOptions(poolTestOpts()...),
		WithPoolMaxSessions(3),
		WithPoolTenantDefaults(TenantQuota{MaxSessions: 2}),
		WithPoolTenantQuota("vip", TenantQuota{MaxSessions: 3}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if _, err := p.Open("bad--tenant"); err == nil {
		t.Error("Open accepted a tenant name containing the separator")
	}

	a1, err := p.Open("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Open("alice"); err != nil {
		t.Fatal(err)
	}
	// Tenant quota: alice is at MaxSessions.
	if _, err := p.Open("alice"); !errors.Is(err, ErrQuotaExceeded) {
		t.Errorf("third alice session: %v, want ErrQuotaExceeded", err)
	}
	// Pool cap: one slot left, vip's own quota would allow three.
	if _, err := p.Open("vip"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Open("vip"); !errors.Is(err, ErrPoolSaturated) {
		t.Errorf("open past pool cap: %v, want ErrPoolSaturated", err)
	}
	// Closing a session frees both the pool slot and the tenant slot.
	a1.Close()
	if _, err := p.Open("alice"); err != nil {
		t.Errorf("open after close: %v", err)
	}
	st := p.Stats()
	if st.RejectedQuota == 0 || st.RejectedSaturated == 0 {
		t.Errorf("rejections not counted: %+v", st)
	}
}

func TestPoolStoredBytesQuota(t *testing.T) {
	ctx := context.Background()

	// Measure one image's size with no quota in the way.
	probe, err := NewPool(NewMemStore(), WithPoolSessionOptions(poolTestOpts()...))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := probe.Open("t")
	if err != nil {
		t.Fatal(err)
	}
	fillHost(t, ps, 64<<10, 0x5A)
	if _, err := ps.Checkpoint(ctx, "probe"); err != nil {
		t.Fatal(err)
	}
	tst, _ := probe.TenantStats("t")
	imgSize := tst.StoredBytes
	probe.Close()
	if imgSize <= 0 {
		t.Fatalf("probe image size %d", imgSize)
	}

	// Budget fits one image but not two.
	store := NewMemStore()
	p, err := NewPool(store,
		WithPoolSessionOptions(poolTestOpts()...),
		WithPoolTenantDefaults(TenantQuota{MaxStoredBytes: imgSize + imgSize/2}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ps, err = p.Open("t")
	if err != nil {
		t.Fatal(err)
	}
	fillHost(t, ps, 64<<10, 0x5A)
	if _, err := ps.Checkpoint(ctx, "gen0"); err != nil {
		t.Fatalf("first checkpoint: %v", err)
	}
	if _, err := ps.Checkpoint(ctx, "gen1"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-budget checkpoint: %v, want ErrQuotaExceeded", err)
	}
	// The aborted image left nothing behind (all-or-nothing Put).
	names, err := store.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "t--gen0" {
		t.Errorf("store after aborted put: %v, want [t--gen0]", names)
	}
	// Deleting the old image frees the budget.
	if err := ps.Delete(ctx, "gen0"); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Checkpoint(ctx, "gen1"); err != nil {
		t.Errorf("checkpoint after delete: %v", err)
	}
	tst, _ = p.TenantStats("t")
	if tst.StoredBytes != imgSize {
		t.Errorf("StoredBytes = %d, want %d", tst.StoredBytes, imgSize)
	}
	if tst.RejectedQuota == 0 || tst.Failures == 0 {
		t.Errorf("quota rejection not counted: %+v", tst)
	}
}

// parkStore parks every Put inside the writer until released, so tests
// can hold a checkpoint "in flight" deterministically (unlike
// gateStore, it supports many Puts).
type parkStore struct {
	Store
	entered chan struct{} // one send per Put reaching its writer
	release chan struct{} // close to let all Puts finish
}

func newParkStore(inner Store) *parkStore {
	return &parkStore{Store: inner, entered: make(chan struct{}, 64), release: make(chan struct{})}
}

func (g *parkStore) Put(ctx context.Context, name string, write func(io.Writer) error) error {
	return g.Store.Put(ctx, name, func(w io.Writer) error {
		g.entered <- struct{}{}
		select {
		case <-g.release:
		case <-ctx.Done():
			return ctx.Err()
		}
		return write(w)
	})
}

func TestPoolInFlightQuota(t *testing.T) {
	ctx := context.Background()
	gate := newParkStore(NewMemStore())
	p, err := NewPool(gate,
		WithPoolSessionOptions(poolTestOpts()...),
		WithPoolTenantDefaults(TenantQuota{MaxInFlight: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ps1, err := p.Open("t")
	if err != nil {
		t.Fatal(err)
	}
	ps2, err := p.Open("t")
	if err != nil {
		t.Fatal(err)
	}
	fillHost(t, ps1, 32<<10, 1)
	fillHost(t, ps2, 32<<10, 2)

	done := make(chan error, 1)
	go func() {
		_, err := ps1.Checkpoint(ctx, "a")
		done <- err
	}()
	<-gate.entered // ps1's checkpoint is now writing (in flight)
	if _, err := ps2.Checkpoint(ctx, "b"); !errors.Is(err, ErrQuotaExceeded) {
		t.Errorf("second in-flight checkpoint: %v, want ErrQuotaExceeded", err)
	}
	close(gate.release)
	if err := <-done; err != nil {
		t.Fatalf("gated checkpoint: %v", err)
	}
	// With the first cut landed the tenant may checkpoint again.
	if _, err := ps2.Checkpoint(ctx, "b"); err != nil {
		t.Errorf("checkpoint after drain: %v", err)
	}
}

// concStore counts concurrently running Puts.
type concStore struct {
	Store
	cur, peak atomic.Int32
}

func (c *concStore) Put(ctx context.Context, name string, write func(io.Writer) error) error {
	n := c.cur.Add(1)
	for {
		p := c.peak.Load()
		if n <= p || c.peak.CompareAndSwap(p, n) {
			break
		}
	}
	defer c.cur.Add(-1)
	return c.Store.Put(ctx, name, write)
}

func TestPoolStaggersCuts(t *testing.T) {
	ctx := context.Background()
	cs := &concStore{Store: NewMemStore()}
	p, err := NewPool(cs,
		WithPoolSessionOptions(poolTestOpts()...),
		WithPoolMaxConcurrentCuts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 4
	sessions := make([]*PoolSession, n)
	for i := range sessions {
		ps, err := p.Open(fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatal(err)
		}
		fillHost(t, ps, 32<<10, byte(i+1))
		sessions[i] = ps
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for _, ps := range sessions {
		wg.Add(1)
		go func(ps *PoolSession) {
			defer wg.Done()
			_, err := ps.Checkpoint(ctx, "gen0")
			errs <- err
		}(ps)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("checkpoint: %v", err)
		}
	}
	if got := cs.peak.Load(); got != 1 {
		t.Errorf("concurrent Puts peaked at %d, want 1 (cuts staggered)", got)
	}
	if st := p.Stats(); st.Checkpoints != n {
		t.Errorf("Stats.Checkpoints = %d, want %d", st.Checkpoints, n)
	}
}

func TestPoolPageBudget(t *testing.T) {
	ctx := context.Background()

	// Measure one session's cut footprint, then budget for ~1.5 of it:
	// concurrent checkpoints must stagger to stay under budget.
	probe, err := NewPool(NewMemStore(), WithPoolSessionOptions(poolTestOpts()...))
	if err != nil {
		t.Fatal(err)
	}
	pps, err := probe.Open("t0")
	if err != nil {
		t.Fatal(err)
	}
	fillHost(t, pps, 32<<10, 1)
	perSession := pps.cutPages()
	probe.Close()
	if perSession <= 0 {
		t.Fatalf("cutPages = %d", perSession)
	}
	budget := perSession + perSession/2

	cs := &concStore{Store: NewMemStore()}
	p, err := NewPool(cs,
		WithPoolSessionOptions(poolTestOpts()...),
		WithPoolPageBudget(budget))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 3
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		ps, err := p.Open(fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatal(err)
		}
		fillHost(t, ps, 32<<10, byte(i+1))
		wg.Add(1)
		go func(ps *PoolSession) {
			defer wg.Done()
			_, err := ps.Checkpoint(ctx, "gen0")
			errs <- err
		}(ps)
	}

	// Sample live retained pages while the checkpoints run.
	stop := make(chan struct{})
	var peakRetained atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := p.RetainedPages(); n > peakRetained.Load() {
				peakRetained.Store(n)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("checkpoint: %v", err)
		}
	}

	st := p.Stats()
	if st.ReservedPagePeak > budget {
		t.Errorf("reserved pages peaked at %d, budget %d", st.ReservedPagePeak, budget)
	}
	if got := peakRetained.Load(); got > budget {
		t.Errorf("live retained pages peaked at %d, budget %d", got, budget)
	}
	if got := p.RetainedPages(); got != 0 {
		t.Errorf("RetainedPages = %d after drain, want 0", got)
	}
}

func TestPoolAdmissionTimeout(t *testing.T) {
	ctx := context.Background()
	gate := newParkStore(NewMemStore())
	p, err := NewPool(gate,
		WithPoolSessionOptions(poolTestOpts()...),
		WithPoolMaxConcurrentCuts(1),
		WithPoolAdmissionTimeout(25*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ps1, err := p.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	ps2, err := p.Open("b")
	if err != nil {
		t.Fatal(err)
	}
	fillHost(t, ps1, 32<<10, 1)
	fillHost(t, ps2, 32<<10, 2)

	done := make(chan error, 1)
	go func() {
		_, err := ps1.Checkpoint(ctx, "a")
		done <- err
	}()
	<-gate.entered
	if _, err := ps2.Checkpoint(ctx, "b"); !errors.Is(err, ErrPoolSaturated) {
		t.Errorf("stagger-queue timeout: %v, want ErrPoolSaturated", err)
	}
	// A context cancelled in the queue surfaces as ErrCancelled instead.
	cctx, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
	_, err = ps2.Checkpoint(cctx, "c")
	cancel()
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("cancelled in queue: %v, want ErrCancelled", err)
	}
	close(gate.release)
	if err := <-done; err != nil {
		t.Fatalf("gated checkpoint: %v", err)
	}
	if st := p.Stats(); st.RejectedSaturated == 0 {
		t.Errorf("saturation rejection not counted: %+v", st)
	}
}

func TestPoolClose(t *testing.T) {
	ctx := context.Background()
	gate := newParkStore(NewMemStore())
	p, err := NewPool(gate,
		WithPoolSessionOptions(poolTestOpts()...),
		WithPoolMaxConcurrentCuts(1))
	if err != nil {
		t.Fatal(err)
	}
	ps1, err := p.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	ps2, err := p.Open("b")
	if err != nil {
		t.Fatal(err)
	}
	fillHost(t, ps1, 32<<10, 1)
	fillHost(t, ps2, 32<<10, 2)

	first := make(chan error, 1)
	go func() {
		_, err := ps1.Checkpoint(ctx, "a")
		first <- err
	}()
	<-gate.entered // ps1 holds the only cut slot
	queued := make(chan error, 1)
	go func() {
		_, err := ps2.Checkpoint(ctx, "b")
		queued <- err
	}()
	// Let ps2 reach the stagger queue, then close the pool: the queued
	// waiter is rejected, the in-flight cut is waited out.
	for {
		if st := p.Stats(); st.Waiting == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	if err := <-queued; !errors.Is(err, ErrPoolClosed) {
		t.Errorf("queued checkpoint at close: %v, want ErrPoolClosed", err)
	}
	close(gate.release)
	if err := <-first; err != nil {
		t.Errorf("in-flight checkpoint at close: %v", err)
	}
	<-closed

	if _, err := p.Open("c"); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Open after Close: %v, want ErrPoolClosed", err)
	}
	if _, err := ps1.Checkpoint(ctx, "x"); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Checkpoint after Close: %v, want ErrSessionClosed", err)
	}
	if err := p.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
