package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestList(t *testing.T) {
	code, out, _ := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, want := range []string{"Hotspot", "LULESH", "UnifiedMemoryStreams"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownAppAndMode(t *testing.T) {
	if code, _, errOut := runCmd(t, "-app", "NoSuchApp"); code != 2 || !strings.Contains(errOut, "unknown app") {
		t.Fatalf("unknown app: exit=%d stderr=%q", code, errOut)
	}
	if code, _, errOut := runCmd(t, "-app", "Hotspot", "-mode", "bogus"); code != 2 || !strings.Contains(errOut, "unknown mode") {
		t.Fatalf("unknown mode: exit=%d stderr=%q", code, errOut)
	}
	if code, _, errOut := runCmd(t, "-app", "Hotspot", "-mode", "native", "-ckpt", "x.img"); code != 2 || !strings.Contains(errOut, "crac mode") {
		t.Fatalf("-ckpt under native: exit=%d stderr=%q", code, errOut)
	}
}

// TestCheckpointRestartRoundTrip smoke-runs the full cracrun flow: run
// an app under CRAC, checkpoint mid-run into a file, restart from it,
// and finish with a correct checksum.
func TestCheckpointRestartRoundTrip(t *testing.T) {
	img := filepath.Join(t.TempDir(), "ckpt.img")
	code, out, errOut := runCmd(t,
		"-app", "Hotspot", "-mode", "crac", "-scale", "0.1", "-ckpt", img, "-ckpt-step", "1")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "checkpoint:") || !strings.Contains(out, "restart:") {
		t.Fatalf("missing checkpoint/restart lines:\n%s", out)
	}
	if !strings.Contains(out, "Hotspot under CRAC") {
		t.Fatalf("missing result block:\n%s", out)
	}
	if fi, err := os.Stat(img); err != nil || fi.Size() == 0 {
		t.Fatalf("image file: %v, %v", fi, err)
	}
}

// TestCheckpointDirStoreGenerations exercises the -ckpt-dir flavor:
// repeated runs against the same directory accumulate generations
// instead of overwriting gen000.
func TestCheckpointDirStoreGenerations(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpts")
	for run, wantGen := range []string{"gen000", "gen001"} {
		code, out, errOut := runCmd(t,
			"-app", "Hotspot", "-mode", "crac", "-scale", "0.1",
			"-ckpt-dir", dir, "-keep", "2", "-ckpt-step", "1")
		if code != 0 {
			t.Fatalf("run %d exit = %d, stderr:\n%s", run, code, errOut)
		}
		if !strings.Contains(out, "checkpoint: "+wantGen) {
			t.Fatalf("run %d missing %s checkpoint line:\n%s", run, wantGen, out)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 2 {
		t.Fatalf("want 2 images in -ckpt-dir, got: %v, %v", entries, err)
	}
}

func TestConflictingStoreFlagsAndHelp(t *testing.T) {
	if code, _, errOut := runCmd(t, "-app", "Hotspot", "-ckpt", "x.img", "-ckpt-dir", "d"); code != 2 ||
		!strings.Contains(errOut, "mutually exclusive") {
		t.Fatalf("conflicting flags: exit=%d stderr=%q", code, errOut)
	}
	if code, _, _ := runCmd(t, "-h"); code != 0 {
		t.Fatalf("-h exit = %d, want 0", code)
	}
}

// TestIncrementalChain runs a workload checkpointing every step into a
// delta chain, then restores the chain tip at the end of the run.
func TestIncrementalChain(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpts")
	code, out, errOut := runCmd(t,
		"-app", "Hotspot", "-mode", "crac", "-scale", "0.1",
		"-ckpt-dir", dir, "-incremental", "8", "-ckpt-step", "1")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "checkpoint: gen000 (") {
		t.Fatalf("missing base checkpoint line:\n%s", out)
	}
	if !strings.Contains(out, "checkpoint: gen001 delta (depth 1") {
		t.Fatalf("missing delta checkpoint line:\n%s", out)
	}
	if !strings.Contains(out, "restart: chain tip") {
		t.Fatalf("missing chain-tip restart line:\n%s", out)
	}
	if !strings.Contains(out, "Hotspot under CRAC") {
		t.Fatalf("missing result block:\n%s", out)
	}
}

// TestIncrementalRequiresDirStore pins the flag validation.
func TestIncrementalRequiresDirStore(t *testing.T) {
	if code, _, errOut := runCmd(t, "-app", "Hotspot", "-ckpt", "x.img", "-incremental", "3"); code != 2 ||
		!strings.Contains(errOut, "-incremental requires -ckpt-dir") {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
}

// TestConcurrentCheckpointFlag exercises -concurrent: the run must
// checkpoint through the snapshot-and-release path, report the
// application-visible pause, and still restart from the image.
func TestConcurrentCheckpointFlag(t *testing.T) {
	dir := t.TempDir()
	code, out, errOut := runCmd(t,
		"-app", "Hotspot", "-mode", "crac", "-scale", "0.1",
		"-ckpt-dir", dir, "-ckpt-step", "1", "-concurrent")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "checkpoint: gen000") || !strings.Contains(out, "(paused ") {
		t.Fatalf("missing concurrent checkpoint/pause lines:\n%s", out)
	}
	if !strings.Contains(out, "restart:") {
		t.Fatalf("missing restart line:\n%s", out)
	}
}

// TestConcurrentIncrementalChain combines -concurrent with
// -incremental: overlapped delta checkpoints, chain-tip restore.
func TestConcurrentIncrementalChain(t *testing.T) {
	dir := t.TempDir()
	code, out, errOut := runCmd(t,
		"-app", "Hotspot", "-mode", "crac", "-scale", "0.1",
		"-ckpt-dir", dir, "-ckpt-step", "1", "-incremental", "4", "-concurrent")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "checkpoint: gen001 delta (depth 1") {
		t.Fatalf("missing delta line:\n%s", out)
	}
	if !strings.Contains(out, "(paused ") || !strings.Contains(out, "chain tip") {
		t.Fatalf("missing pause/chain-tip lines:\n%s", out)
	}
}

// TestLazyRestartFlag exercises -lazy end-to-end: the restart reports
// its visible pause, the time-to-first-kernel of the next app step,
// and the background drain's completion.
func TestLazyRestartFlag(t *testing.T) {
	dir := t.TempDir()
	code, out, errOut := runCmd(t,
		"-app", "Hotspot", "-mode", "crac", "-scale", "0.1",
		"-ckpt-dir", dir, "-ckpt-step", "2", "-lazy")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	for _, want := range []string{
		"restart: lazy, executing after",
		"time-to-first-kernel",
		"background drain finished",
		"Hotspot under CRAC",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}
