// Command cracrun runs one of the paper's benchmark applications under a
// chosen runtime binding, optionally checkpointing mid-run into an image
// store and restarting from it (the cracrun/cracrestart flow of a real
// CRAC deployment, collapsed into one process for the simulated
// substrate).
//
// Usage:
//
//	cracrun -list
//	cracrun -app Hotspot -mode crac -scale 0.5
//	cracrun -app LULESH -mode crac -ckpt lulesh.img -ckpt-step 50
//	cracrun -app Hotspot -mode crac -ckpt-dir ckpts/ -keep 3 -ckpt-step 2
//	cracrun -app LULESH -ckpt-dir ckpts/ -incremental 8   # delta chain, base every 9th
//	cracrun -app BFS -mode native
//	cracrun -app UnifiedMemoryStreams -mode proxy-pipe   # CRUM-style baseline
//	cracrun -app Hotspot -ckpt hs.img -timeout 30s       # deadline-bounded checkpoint
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	crac "repro"
	"repro/internal/gpusim"
	"repro/internal/harness"
	"repro/internal/trace"
	"repro/internal/workloads"
	"repro/internal/workloads/hpgmg"
	"repro/internal/workloads/hypre"
	"repro/internal/workloads/lulesh"
	"repro/internal/workloads/rodinia"
	"repro/internal/workloads/streamapps"
)

func apps() []*workloads.App {
	out := rodinia.AllApps()
	out = append(out, streamapps.SimpleStreams(), streamapps.UnifiedMemoryStreams(),
		lulesh.App(), hpgmg.App(), hypre.App())
	return out
}

func findApp(name string) *workloads.App {
	for _, a := range apps() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

func parseMode(s string) (harness.Mode, error) {
	switch s {
	case "native":
		return harness.ModeNative, nil
	case "crac":
		return harness.ModeCRAC, nil
	case "crac-fsgsbase":
		return harness.ModeCRACFSGSBase, nil
	case "proxy-pipe":
		return harness.ModeProxyPipe, nil
	case "proxy-cma":
		return harness.ModeProxyCMA, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (native, crac, crac-fsgsbase, proxy-pipe, proxy-cma)", s)
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind main, split out so tests can drive
// the binary in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cracrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		appName  = fs.String("app", "", "application name (see -list)")
		list     = fs.Bool("list", false, "list applications and exit")
		modeStr  = fs.String("mode", "crac", "runtime binding: native, crac, crac-fsgsbase, proxy-pipe, proxy-cma")
		scale    = fs.Float64("scale", 1.0, "workload scale factor")
		streams  = fs.Int("streams", 0, "stream count override (0 = app default)")
		seed     = fs.Int64("seed", 7, "workload seed")
		device   = fs.String("device", "v100", "simulated device: v100 or k600")
		ckptPath = fs.String("ckpt", "", "checkpoint to this file mid-run (crac modes only)")
		ckptDir  = fs.String("ckpt-dir", "", "checkpoint into this directory, one image per generation")
		keep     = fs.Int("keep", 0, "with -ckpt-dir: retain only the newest N images (0 = all)")
		ckptStep = fs.Int("ckpt-step", 1, "hook step at which to checkpoint")
		restart  = fs.Bool("restart", true, "restart from the image immediately after checkpointing")
		timeout  = fs.Duration("timeout", 0, "checkpoint/restart deadline (0 = none)")
		incr     = fs.Int("incremental", 0, "incremental checkpointing: up to N delta images per full base (requires -ckpt-dir; 0 = off)")
		lazy     = fs.Bool("lazy", false, "lazy on-demand restart: resume execution after metadata + log replay, fault shards in on access, drain in the background (reports time-to-first-kernel)")
		conc     = fs.Bool("concurrent", false, "snapshot-and-release checkpoints: pause only for the epoch cut, write the image concurrently")
		profile  = fs.Bool("profile", false, "print an nvprof-style per-API call summary")
		verify   = fs.Bool("verify", false, "verify each checkpoint's chain end to end after it commits")
		scrub    = fs.Bool("scrub", false, "scrub the store before running: quarantine corrupt images and condemned deltas")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "Applications:")
		for _, a := range apps() {
			fmt.Fprintf(stdout, "  %-22s %s\n", a.Name, a.Char.Description)
			fmt.Fprintf(stdout, "  %-22s paper args: %s\n", "", a.PaperArgs)
		}
		return 0
	}
	app := findApp(*appName)
	if app == nil {
		fmt.Fprintf(stderr, "cracrun: unknown app %q (use -list)\n", *appName)
		return 2
	}
	mode, err := parseMode(*modeStr)
	if err != nil {
		fmt.Fprintln(stderr, "cracrun:", err)
		return 2
	}
	prop := gpusim.TeslaV100()
	if *device == "k600" {
		prop = gpusim.QuadroK600()
	}

	if *lazy && !*restart {
		fmt.Fprintln(stderr, "cracrun: -lazy requires -restart")
		return 2
	}
	var sessionOpts []crac.Option
	if *incr > 0 {
		// A delta names its parent image, so the chain needs the
		// one-file-per-generation store; a single fixed path would
		// overwrite the parent the next delta depends on.
		if *ckptDir == "" {
			fmt.Fprintln(stderr, "cracrun: -incremental requires -ckpt-dir")
			return 2
		}
		sessionOpts = append(sessionOpts, crac.WithIncremental(*incr))
	}
	if *conc {
		sessionOpts = append(sessionOpts, crac.WithConcurrentCheckpoint())
	}
	runner, err := harness.NewRunner(mode, prop, sessionOpts...)
	if err != nil {
		fmt.Fprintln(stderr, "cracrun:", err)
		return 1
	}
	defer runner.Close()

	cfg := workloads.RunConfig{Scale: *scale, Streams: *streams, Seed: *seed}
	if *ckptPath != "" && *ckptDir != "" {
		fmt.Fprintln(stderr, "cracrun: -ckpt and -ckpt-dir are mutually exclusive")
		return 2
	}
	var lastCkpt string
	var store crac.Store
	var lazyPending *crac.Restarting
	var lazyRestartAt time.Time
	lazyTTFKReported := true
	if *ckptPath != "" || *ckptDir != "" {
		if runner.Session == nil {
			fmt.Fprintln(stderr, "cracrun: -ckpt/-ckpt-dir require a crac mode")
			return 2
		}
		if *ckptDir != "" {
			store, err = crac.NewDirStore(*ckptDir, *keep)
			if err != nil {
				fmt.Fprintln(stderr, "cracrun:", err)
				return 1
			}
		} else {
			store = crac.NewFileStore(*ckptPath)
		}
		if *scrub {
			rep, err := crac.Scrub(context.Background(), store)
			if err != nil {
				fmt.Fprintln(stderr, "cracrun: scrub:", err)
				return 1
			}
			fmt.Fprintf(stdout, "scrub: %d intact, %d corrupt, %d condemned, %d quarantined\n",
				len(rep.Intact), len(rep.Corrupt), len(rep.Condemned), len(rep.Quarantined))
			for _, issue := range rep.Corrupt {
				fmt.Fprintf(stdout, "scrub: corrupt %s: %v\n", issue.Name, issue.Err)
			}
			for _, name := range rep.Condemned {
				fmt.Fprintf(stdout, "scrub: condemned %s (broken ancestry)\n", name)
			}
		}
		step := 0
		cfg.Hook = func(int) error {
			step++
			if !lazyTTFKReported {
				// The first hook step after a lazy restart: the app has run
				// real kernels against faulted-in memory by now.
				lazyTTFKReported = true
				fmt.Fprintf(stdout, "restart: time-to-first-kernel %v (first app step completed after lazy restart)\n",
					time.Since(lazyRestartAt).Round(time.Microsecond))
			}
			if *incr > 0 {
				// Incremental mode checkpoints repeatedly — every
				// ckpt-step hook steps — growing a base+delta chain.
				if *ckptStep <= 0 || step%*ckptStep != 0 {
					return nil
				}
			} else if step != *ckptStep {
				return nil
			}
			ctx := context.Background()
			if *timeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, *timeout)
				defer cancel()
			}
			name := nextGenName(ctx, store)
			t0 := time.Now()
			st, err := runner.Session.CheckpointTo(ctx, store, name)
			if err != nil {
				return err
			}
			// The application-visible pause: with -concurrent this is just
			// the drain + copy-on-write arming, far below the total.
			pause := st.PauseDuration.Round(time.Microsecond)
			if st.Delta {
				fmt.Fprintf(stdout, "checkpoint: %s delta (depth %d, %.1f%% dirty: %s of %s payload) in %v (paused %v)\n",
					name, st.DeltaDepth, 100*st.DirtyRatio(),
					harness.FmtBytes(st.PayloadWritten), harness.FmtBytes(st.PayloadTotal),
					time.Since(t0).Round(time.Millisecond), pause)
			} else {
				fmt.Fprintf(stdout, "checkpoint: %s (%d regions, %s payload) in %v (paused %v)\n",
					name, st.Regions, harness.FmtBytes(st.RegionBytes+st.SectionBytes),
					time.Since(t0).Round(time.Millisecond), pause)
			}
			if *verify {
				chain, verr := crac.VerifyChain(ctx, store, name)
				if verr != nil {
					return fmt.Errorf("verifying checkpoint %s: %w", name, verr)
				}
				fmt.Fprintf(stdout, "verify: %s OK (%d chain member(s))\n", name, len(chain))
			}
			// In incremental mode a mid-run restart would break the chain
			// (the next checkpoint becomes a base), so -restart instead
			// restores the chain tip once, after the run completes.
			if *restart && *incr == 0 {
				t0 = time.Now()
				if *lazy {
					p, err := runner.Session.RestartAsync(ctx, store, name)
					if err != nil {
						return err
					}
					lazyPending, lazyRestartAt, lazyTTFKReported = p, t0, false
					fmt.Fprintf(stdout, "restart: lazy, executing after %v visible pause (generation %d); image draining in the background\n",
						time.Since(t0).Round(time.Microsecond), runner.Session.Generation())
				} else {
					if err := runner.Session.RestartFrom(ctx, store, name); err != nil {
						return err
					}
					fmt.Fprintf(stdout, "restart: completed in %v (generation %d)\n",
						time.Since(t0).Round(time.Millisecond), runner.Session.Generation())
				}
			}
			lastCkpt = name
			return nil
		}
	}

	rt := runner.RT
	var prof *trace.Profiler
	if *profile {
		prof = trace.New(rt)
		rt = prof
	}
	res, err := app.Run(rt, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "cracrun: %s under %v: %v\n", app.Name, mode, err)
		return 1
	}
	if lazyPending != nil {
		st, werr := lazyPending.Wait()
		if werr != nil {
			fmt.Fprintf(stderr, "cracrun: background drain: %v\n", werr)
		} else {
			untouched := 0
			if lib := runner.Session.Library(); lib != nil {
				untouched = lib.UVM().UntouchedHostPages()
			}
			fmt.Fprintf(stdout, "restart: background drain finished in %v (visible %v, total %v); %d managed pages still cold (host-resident, never touched)\n",
				st.RestoreBackgroundDuration.Round(time.Microsecond),
				st.RestoreVisibleDuration.Round(time.Microsecond),
				st.RestoreDuration.Round(time.Microsecond), untouched)
		}
	}
	if *incr > 0 && *restart && lastCkpt != "" {
		// Prove the chain tip restores: base + deltas materialize
		// through the store, under the same deadline as any other
		// checkpoint/restart operation.
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		t0 := time.Now()
		if *lazy {
			p, err := runner.Session.RestartAsync(ctx, store, lastCkpt)
			if err != nil {
				fmt.Fprintf(stderr, "cracrun: restoring chain tip %s: %v\n", lastCkpt, err)
				return 1
			}
			fmt.Fprintf(stdout, "restart: chain tip %s lazily restored, executing after %v visible pause (generation %d)\n",
				lastCkpt, time.Since(t0).Round(time.Microsecond), runner.Session.Generation())
			if st, werr := p.Wait(); werr != nil {
				fmt.Fprintf(stderr, "cracrun: background drain: %v\n", werr)
			} else {
				fmt.Fprintf(stdout, "restart: background drain finished in %v (total %v)\n",
					st.RestoreBackgroundDuration.Round(time.Microsecond), st.RestoreDuration.Round(time.Microsecond))
			}
		} else {
			if err := runner.Session.RestartFrom(ctx, store, lastCkpt); err != nil {
				fmt.Fprintf(stderr, "cracrun: restoring chain tip %s: %v\n", lastCkpt, err)
				return 1
			}
			fmt.Fprintf(stdout, "restart: chain tip %s restored in %v (generation %d)\n",
				lastCkpt, time.Since(t0).Round(time.Millisecond), runner.Session.Generation())
		}
	}
	fmt.Fprintf(stdout, "%s under %v:\n", app.Name, mode)
	fmt.Fprintf(stdout, "  runtime:    %v\n", res.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(stdout, "  CUDA calls: %d (CPS %.0f, per the paper's Eq. 2)\n",
		res.Calls.TotalCUDACalls(), res.CPS())
	fmt.Fprintf(stdout, "  checksum:   %v\n", res.Checksum)
	for k, v := range res.Detail {
		fmt.Fprintf(stdout, "  %s: %.3f\n", k, v)
	}
	if prof != nil {
		fmt.Fprintln(stdout)
		prof.Fprint(stdout)
	}
	return 0
}

// nextGenName picks the first unused genNNN name in the store, so
// repeated runs against the same -ckpt-dir accumulate generations
// instead of overwriting gen000 (retention via -keep then applies).
func nextGenName(ctx context.Context, store crac.Store) string {
	names, err := store.List(ctx)
	if err != nil {
		return "gen000"
	}
	taken := make(map[string]bool, len(names))
	for _, n := range names {
		taken[n] = true
	}
	for i := 0; ; i++ {
		name := fmt.Sprintf("gen%03d", i)
		if !taken[name] {
			return name
		}
	}
}
