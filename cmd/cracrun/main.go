// Command cracrun runs one of the paper's benchmark applications under a
// chosen runtime binding, optionally checkpointing mid-run and restarting
// from the image (the cracrun/cracrestart flow of a real CRAC
// deployment, collapsed into one process for the simulated substrate).
//
// Usage:
//
//	cracrun -list
//	cracrun -app Hotspot -mode crac -scale 0.5
//	cracrun -app LULESH -mode crac -ckpt lulesh.img -ckpt-step 50
//	cracrun -app BFS -mode native
//	cracrun -app UnifiedMemoryStreams -mode proxy-pipe   # CRUM-style baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/gpusim"
	"repro/internal/harness"
	"repro/internal/trace"
	"repro/internal/workloads"
	"repro/internal/workloads/hpgmg"
	"repro/internal/workloads/hypre"
	"repro/internal/workloads/lulesh"
	"repro/internal/workloads/rodinia"
	"repro/internal/workloads/streamapps"
)

func apps() []*workloads.App {
	out := rodinia.AllApps()
	out = append(out, streamapps.SimpleStreams(), streamapps.UnifiedMemoryStreams(),
		lulesh.App(), hpgmg.App(), hypre.App())
	return out
}

func findApp(name string) *workloads.App {
	for _, a := range apps() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

func parseMode(s string) (harness.Mode, error) {
	switch s {
	case "native":
		return harness.ModeNative, nil
	case "crac":
		return harness.ModeCRAC, nil
	case "crac-fsgsbase":
		return harness.ModeCRACFSGSBase, nil
	case "proxy-pipe":
		return harness.ModeProxyPipe, nil
	case "proxy-cma":
		return harness.ModeProxyCMA, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (native, crac, crac-fsgsbase, proxy-pipe, proxy-cma)", s)
	}
}

func main() {
	var (
		appName  = flag.String("app", "", "application name (see -list)")
		list     = flag.Bool("list", false, "list applications and exit")
		modeStr  = flag.String("mode", "crac", "runtime binding: native, crac, crac-fsgsbase, proxy-pipe, proxy-cma")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		streams  = flag.Int("streams", 0, "stream count override (0 = app default)")
		seed     = flag.Int64("seed", 7, "workload seed")
		device   = flag.String("device", "v100", "simulated device: v100 or k600")
		ckptPath = flag.String("ckpt", "", "checkpoint to this file mid-run (crac modes only)")
		ckptStep = flag.Int("ckpt-step", 1, "hook step at which to checkpoint")
		restart  = flag.Bool("restart", true, "restart from the image immediately after checkpointing")
		profile  = flag.Bool("profile", false, "print an nvprof-style per-API call summary")
	)
	flag.Parse()

	if *list {
		fmt.Println("Applications:")
		for _, a := range apps() {
			fmt.Printf("  %-22s %s\n", a.Name, a.Char.Description)
			fmt.Printf("  %-22s paper args: %s\n", "", a.PaperArgs)
		}
		return
	}
	app := findApp(*appName)
	if app == nil {
		fmt.Fprintf(os.Stderr, "cracrun: unknown app %q (use -list)\n", *appName)
		os.Exit(2)
	}
	mode, err := parseMode(*modeStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cracrun:", err)
		os.Exit(2)
	}
	prop := gpusim.TeslaV100()
	if *device == "k600" {
		prop = gpusim.QuadroK600()
	}

	runner, err := harness.NewRunner(mode, prop)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cracrun:", err)
		os.Exit(1)
	}
	defer runner.Close()

	cfg := workloads.RunConfig{Scale: *scale, Streams: *streams, Seed: *seed}
	if *ckptPath != "" {
		if runner.Session == nil {
			fmt.Fprintln(os.Stderr, "cracrun: -ckpt requires a crac mode")
			os.Exit(2)
		}
		step := 0
		cfg.Hook = func(int) error {
			step++
			if step != *ckptStep {
				return nil
			}
			t0 := time.Now()
			size, _, err := runner.Session.CheckpointFile(*ckptPath)
			if err != nil {
				return err
			}
			fmt.Printf("checkpoint: %s (%d bytes) in %v\n", *ckptPath, size, time.Since(t0).Round(time.Millisecond))
			if *restart {
				t0 = time.Now()
				if err := runner.Session.RestartFile(*ckptPath); err != nil {
					return err
				}
				fmt.Printf("restart: completed in %v\n", time.Since(t0).Round(time.Millisecond))
			}
			return nil
		}
	}

	rt := runner.RT
	var prof *trace.Profiler
	if *profile {
		prof = trace.New(rt)
		rt = prof
	}
	res, err := app.Run(rt, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cracrun: %s under %v: %v\n", app.Name, mode, err)
		os.Exit(1)
	}
	fmt.Printf("%s under %v:\n", app.Name, mode)
	fmt.Printf("  runtime:    %v\n", res.Elapsed.Round(time.Millisecond))
	fmt.Printf("  CUDA calls: %d (CPS %.0f, per the paper's Eq. 2)\n",
		res.Calls.TotalCUDACalls(), res.CPS())
	fmt.Printf("  checksum:   %v\n", res.Checksum)
	for k, v := range res.Detail {
		fmt.Printf("  %s: %.3f\n", k, v)
	}
	if prof != nil {
		fmt.Println()
		prof.Fprint(os.Stdout)
	}
}
