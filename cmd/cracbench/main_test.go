package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestListExperiments(t *testing.T) {
	code, out, _ := runBench(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, want := range []string{"fig2", "fig3", "table3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, errOut := runBench(t, "-exp", "nope")
	if code != 2 || !strings.Contains(errOut, "unknown experiment") {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
}

// TestQuickExperimentWithArtifacts smoke-runs one real experiment and
// checks the CSV and -benchjson artifacts cracbench's CI step relies
// on.
func TestQuickExperimentWithArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment still runs real workloads")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	code, out, errOut := runBench(t,
		"-exp", "fig3", "-quick", "-v=false", "-out", dir, "-benchjson", jsonPath)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "fig3") {
		t.Fatalf("missing table output:\n%s", out)
	}
	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("benchjson: %v", err)
	}
	var report struct {
		Experiments []struct {
			ID     string `json:"id"`
			Tables []struct {
				Rows [][]string `json:"Rows"`
			} `json:"tables"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(b, &report); err != nil {
		t.Fatalf("benchjson parse: %v", err)
	}
	if len(report.Experiments) != 1 || report.Experiments[0].ID != "fig3" {
		t.Fatalf("benchjson experiments = %+v", report.Experiments)
	}
	if len(report.Experiments[0].Tables) == 0 || len(report.Experiments[0].Tables[0].Rows) == 0 {
		t.Fatalf("benchjson has no table rows")
	}
	csvs, _ := filepath.Glob(filepath.Join(dir, "*.csv"))
	if len(csvs) == 0 {
		t.Fatalf("no CSV artifacts in %s", dir)
	}
}
