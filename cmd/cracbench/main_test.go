package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestListExperiments(t *testing.T) {
	code, out, _ := runBench(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, want := range []string{"fig2", "fig3", "table3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, errOut := runBench(t, "-exp", "nope")
	if code != 2 || !strings.Contains(errOut, "unknown experiment") {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
}

// TestQuickExperimentWithArtifacts smoke-runs one real experiment and
// checks the CSV and -benchjson artifacts cracbench's CI step relies
// on.
func TestQuickExperimentWithArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment still runs real workloads")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	code, out, errOut := runBench(t,
		"-exp", "fig3", "-quick", "-v=false", "-out", dir, "-benchjson", jsonPath)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "fig3") {
		t.Fatalf("missing table output:\n%s", out)
	}
	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("benchjson: %v", err)
	}
	var report struct {
		Experiments []struct {
			ID     string `json:"id"`
			Tables []struct {
				Rows [][]string `json:"Rows"`
			} `json:"tables"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(b, &report); err != nil {
		t.Fatalf("benchjson parse: %v", err)
	}
	if len(report.Experiments) != 1 || report.Experiments[0].ID != "fig3" {
		t.Fatalf("benchjson experiments = %+v", report.Experiments)
	}
	if len(report.Experiments[0].Tables) == 0 || len(report.Experiments[0].Tables[0].Rows) == 0 {
		t.Fatalf("benchjson has no table rows")
	}
	csvs, _ := filepath.Glob(filepath.Join(dir, "*.csv"))
	if len(csvs) == 0 {
		t.Fatalf("no CSV artifacts in %s", dir)
	}
}

// gateReport builds a minimal -benchjson document with one timing
// metric per row.
func gateReport(t *testing.T, path string, restartMS, ttfkMS float64) {
	t.Helper()
	doc := fmt.Sprintf(`{"experiments":[{"id":"restart","title":"t","elapsed_ms":1,"tables":[
		{"ID":"restart","Title":"Restart time-to-first-kernel (eager vs lazy)",
		 "Columns":["Path","Visible (ms)","TTFK (ms)"],
		 "Rows":[["eager","%.2f","%.2f"],["lazy","1.50","%.2f"]]}]}]}`,
		restartMS, restartMS, ttfkMS)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCompareGate checks the bench-gate's verdicts: equal reports
// pass, a >25%+slack slowdown fails, and a below-noise-floor metric is
// ignored.
func TestCompareGate(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")

	gateReport(t, oldP, 60, 4)
	gateReport(t, newP, 62, 4.2) // within threshold
	code, out, errOut := runBench(t, "-compare", oldP, newP)
	if code != 0 {
		t.Fatalf("within-threshold compare failed (%d):\n%s\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "0 regressions") {
		t.Fatalf("missing summary:\n%s", out)
	}

	// -summary appends the markdown table CI drops into
	// $GITHUB_STEP_SUMMARY (appends: the file accumulates sections).
	sumP := filepath.Join(dir, "summary.md")
	if err := os.WriteFile(sumP, []byte("prior step\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out, errOut = runBench(t, "-compare", oldP, "-summary", sumP, newP); code != 0 {
		t.Fatalf("compare with -summary failed (%d):\n%s\n%s", code, out, errOut)
	}
	md, err := os.ReadFile(sumP)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"prior step", "### Bench gate", "no regressions", "| Metric |", "eager / Visible (ms)"} {
		if !strings.Contains(string(md), want) {
			t.Fatalf("summary missing %q:\n%s", want, md)
		}
	}

	gateReport(t, newP, 130, 25) // 2x and 6x slowdowns
	code, out, errOut = runBench(t, "-compare", oldP, "-summary", sumP, newP)
	if code != 1 {
		t.Fatalf("regression not flagged (exit %d):\n%s", code, out)
	}
	if !strings.Contains(errOut, "regressed") || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("missing regression report:\n%s\n%s", out, errOut)
	}
	if md, err = os.ReadFile(sumP); err != nil || !strings.Contains(string(md), "**REGRESSION**") {
		t.Fatalf("summary missing regression marker (%v):\n%s", err, md)
	}

	// A big relative jump on a sub-noise-floor metric passes.
	gateReport(t, oldP, 0.5, 0.4)
	gateReport(t, newP, 1.5, 1.2)
	if code, out, _ = runBench(t, "-compare", oldP, newP); code != 0 {
		t.Fatalf("noise-floor metric flagged (exit %d):\n%s", code, out)
	}

	// Usage errors: missing positional, unreadable files.
	if code, _, _ = runBench(t, "-compare", oldP); code != 2 {
		t.Fatalf("missing positional: exit %d", code)
	}
	if code, _, _ = runBench(t, "-compare", filepath.Join(dir, "absent.json"), newP); code != 2 {
		t.Fatalf("missing baseline: exit %d", code)
	}
}
