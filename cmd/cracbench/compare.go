// The benchmark-regression gate: `cracbench -compare old.json new.json`
// diffs two -benchjson reports and fails (exit 1) when any timing
// metric regressed beyond the threshold — CI runs it on every PR
// against the committed BENCH_main.json baseline, so the perf wins of
// the checkpoint/restart data path stay guarded.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
)

// writeMarkdownSummary appends the gate's verdict as a markdown table
// — the shape $GITHUB_STEP_SUMMARY renders, so the bench result reads
// off the PR checks page without opening the log. Append, not
// truncate: the step summary file accumulates sections from every
// step of the job.
func writeMarkdownSummary(path string, comps []comparison, statuses []string, skipped, regressed int, threshold float64) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	verdict := "✅ no regressions"
	if regressed > 0 {
		verdict = fmt.Sprintf("❌ %d regression(s)", regressed)
	}
	fmt.Fprintf(f, "### Bench gate: %s\n\n", verdict)
	fmt.Fprintf(f, "%d timing metrics compared (threshold %.0f%%), %d below the noise floor.\n\n",
		len(comps), threshold*100, skipped)
	fmt.Fprintln(f, "| Metric | Baseline (ms) | New (ms) | Ratio | Status |")
	fmt.Fprintln(f, "|---|---:|---:|---:|---|")
	for i, c := range comps {
		status := statuses[i]
		if status == "REGRESSION" {
			status = "**REGRESSION**"
		}
		fmt.Fprintf(f, "| %s | %.2f | %.2f | %.2fx | %s |\n",
			strings.ReplaceAll(c.metric, "|", "\\|"), c.oldMS, c.newMS, c.ratio(), status)
	}
	fmt.Fprintln(f)
	return nil
}

// timingUnit classifies a table column as a timing metric by its
// header, returning the factor converting its values to milliseconds
// (0: not a timing column).
func timingUnit(col string) float64 {
	switch {
	case strings.Contains(col, "(ms)"):
		return 1
	case strings.Contains(col, "(s)"):
		return 1000
	default:
		return 0
	}
}

// rowKey identifies a table row by its leading non-timing label cells
// (benchmark name, policy, path, ...), stopping at the first timing
// column so value-ish trailing cells (sizes, ratios) don't break the
// match when they legitimately change.
func rowKey(columns, row []string) string {
	var parts []string
	for i, col := range columns {
		if timingUnit(col) != 0 {
			break
		}
		if i < len(row) {
			parts = append(parts, row[i])
		}
	}
	return strings.Join(parts, " / ")
}

// loadReport parses one -benchjson file.
func loadReport(path string) (*benchReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &r, nil
}

// comparison is one timing metric diffed across the two reports.
type comparison struct {
	metric string // "exp/table: row / column"
	oldMS  float64
	newMS  float64
}

func (c comparison) ratio() float64 {
	if c.oldMS == 0 {
		return 1
	}
	return c.newMS / c.oldMS
}

// collectComparisons pairs up every timing cell present in both
// reports.
func collectComparisons(oldR, newR *benchReport) []comparison {
	type tableKey struct{ exp, table string }
	oldTables := make(map[tableKey]*harness.Table)
	for _, e := range oldR.Experiments {
		for _, t := range e.Tables {
			oldTables[tableKey{e.ID, t.ID + "/" + t.Title}] = t
		}
	}
	var out []comparison
	for _, e := range newR.Experiments {
		for _, nt := range e.Tables {
			ot, ok := oldTables[tableKey{e.ID, nt.ID + "/" + nt.Title}]
			if !ok {
				continue
			}
			oldRows := make(map[string][]string, len(ot.Rows))
			for _, row := range ot.Rows {
				oldRows[rowKey(ot.Columns, row)] = row
			}
			for _, row := range nt.Rows {
				orow, ok := oldRows[rowKey(nt.Columns, row)]
				if !ok {
					continue
				}
				for ci, col := range nt.Columns {
					unit := timingUnit(col)
					if unit == 0 || ci >= len(row) || ci >= len(orow) {
						continue
					}
					ov, err1 := strconv.ParseFloat(strings.TrimSpace(orow[ci]), 64)
					nv, err2 := strconv.ParseFloat(strings.TrimSpace(row[ci]), 64)
					if err1 != nil || err2 != nil {
						continue
					}
					out = append(out, comparison{
						metric: fmt.Sprintf("%s/%s: %s / %s", e.ID, nt.ID, rowKey(nt.Columns, row), col),
						oldMS:  ov * unit,
						newMS:  nv * unit,
					})
				}
			}
		}
	}
	return out
}

// runCompare is the -compare entry point: exit 0 when no compared
// timing regressed beyond threshold, 1 otherwise, 2 on usage errors.
// A regression needs both a relative breach (new > old*(1+threshold))
// and an absolute one (new-old > slackMS): quick-mode timings on
// shared CI runners jitter by whole milliseconds, and the gate's job
// is to catch a lost optimization — an order-of-magnitude shift — not
// to flap on scheduler noise.
func runCompare(oldPath, newPath string, threshold, minMS, slackMS float64, summaryPath string, stdout, stderr io.Writer) int {
	oldR, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "cracbench: baseline: %v\n", err)
		return 2
	}
	newR, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "cracbench: new report: %v\n", err)
		return 2
	}
	comps := collectComparisons(oldR, newR)
	if len(comps) == 0 {
		fmt.Fprintln(stderr, "cracbench: the reports share no comparable timing metrics")
		return 2
	}
	var regressions []comparison
	statuses := make([]string, len(comps))
	skipped := 0
	fmt.Fprintf(stdout, "bench-gate: %s -> %s (threshold %.0f%%, noise floor %.1fms)\n",
		oldPath, newPath, threshold*100, minMS)
	for i, c := range comps {
		status := "ok"
		switch {
		case c.oldMS < minMS && c.newMS < minMS:
			// Both sides under the noise floor: sub-millisecond jitter,
			// not a signal. A tiny baseline with a LARGE new value (a
			// lost optimization — the very thing the tiny baseline
			// proves) is still compared.
			status = "skip (below noise floor)"
			skipped++
		case c.newMS > c.oldMS*(1+threshold) && c.newMS-c.oldMS > slackMS:
			status = "REGRESSION"
			regressions = append(regressions, c)
		}
		statuses[i] = status
		fmt.Fprintf(stdout, "  %-60s %6.2fms -> %6.2fms  (%.2fx)  %s\n",
			c.metric, c.oldMS, c.newMS, c.ratio(), status)
	}
	fmt.Fprintf(stdout, "bench-gate: %d metrics compared, %d below noise floor, %d regressions\n",
		len(comps), skipped, len(regressions))
	if summaryPath != "" {
		if err := writeMarkdownSummary(summaryPath, comps, statuses, skipped, len(regressions), threshold); err != nil {
			fmt.Fprintf(stderr, "cracbench: writing summary: %v\n", err)
			return 2
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(stderr, "cracbench: %d timing metric(s) regressed more than %.0f%%:\n", len(regressions), threshold*100)
		for _, c := range regressions {
			fmt.Fprintf(stderr, "  %s: %.2fms -> %.2fms (%.2fx)\n", c.metric, c.oldMS, c.newMS, c.ratio())
		}
		return 1
	}
	return 0
}
