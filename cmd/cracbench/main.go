// Command cracbench regenerates the tables and figures of the CRAC paper
// (Jain & Cooperman, SC'20) on the simulated substrate.
//
// Usage:
//
//	cracbench -list
//	cracbench -exp fig2 [-scale 1.0] [-iters 3] [-out results/]
//	cracbench -exp all [-quick]
//	cracbench -exp fig3 -quick -benchjson BENCH_checkpoint.json
//
// Each experiment prints the paper-style table to stdout; with -out, a
// CSV per table is written as well; with -benchjson, every result row
// is also written to one JSON file for machine consumption (CI tracks
// the checkpoint/restart perf trajectory this way).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/harness"
)

// benchReport is the -benchjson output document.
type benchReport struct {
	Experiments []benchExperiment `json:"experiments"`
}

type benchExperiment struct {
	ID        string           `json:"id"`
	Title     string           `json:"title"`
	ElapsedMS int64            `json:"elapsed_ms"`
	Tables    []*harness.Table `json:"tables"`
}

func main() {
	var (
		expID     = flag.String("exp", "all", "experiment id (see -list) or \"all\"")
		list      = flag.Bool("list", false, "list experiments and exit")
		scale     = flag.Float64("scale", 1.0, "workload scale factor (1.0 = repository default)")
		iters     = flag.Int("iters", 3, "timed repetitions per data point (paper: 10)")
		quick     = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
		full      = flag.Bool("full", false, "enable the most expensive data points (Table 3 sgemm@100MB)")
		outDir    = flag.String("out", "", "directory for CSV output (optional)")
		benchJSON = flag.String("benchjson", "", "file for JSON benchmark output (optional)")
		verbose   = flag.Bool("v", true, "print progress")
	)
	flag.Parse()

	if *list {
		fmt.Println("Experiments (paper artifact → id):")
		for _, e := range harness.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
			fmt.Printf("  %-10s paper: %s\n", "", e.Paper)
		}
		return
	}

	opt := harness.Options{
		Scale:      *scale,
		Iterations: *iters,
		Quick:      *quick,
		Full:       *full,
	}
	if *verbose {
		opt.Log = os.Stderr
	}

	var exps []*harness.Experiment
	if *expID == "all" {
		exps = harness.All()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e := harness.ByID(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "cracbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "cracbench: %v\n", err)
			os.Exit(1)
		}
	}

	var report benchReport
	for _, e := range exps {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "--- running %s: %s\n", e.ID, e.Title)
		tables, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cracbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for i, t := range tables {
			t.Fprint(os.Stdout)
			if *outDir != "" {
				name := t.ID
				if len(tables) > 1 {
					name = fmt.Sprintf("%s_%d", t.ID, i)
				}
				f, err := os.Create(filepath.Join(*outDir, name+".csv"))
				if err != nil {
					fmt.Fprintf(os.Stderr, "cracbench: %v\n", err)
					os.Exit(1)
				}
				t.CSV(f)
				f.Close()
			}
		}
		elapsed := time.Since(start)
		report.Experiments = append(report.Experiments, benchExperiment{
			ID: e.ID, Title: e.Title, ElapsedMS: elapsed.Milliseconds(), Tables: tables,
		})
		fmt.Fprintf(os.Stderr, "--- %s done in %v\n", e.ID, elapsed.Round(time.Millisecond))
	}
	if *benchJSON != "" {
		b, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "cracbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchJSON, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cracbench: %v\n", err)
			os.Exit(1)
		}
	}
}
