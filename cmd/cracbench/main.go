// Command cracbench regenerates the tables and figures of the CRAC paper
// (Jain & Cooperman, SC'20) on the simulated substrate.
//
// Usage:
//
//	cracbench -list
//	cracbench -exp fig2 [-scale 1.0] [-iters 3] [-out results/]
//	cracbench -exp all [-quick]
//	cracbench -exp fig3 -quick -benchjson BENCH_checkpoint.json
//
// Each experiment prints the paper-style table to stdout; with -out, a
// CSV per table is written as well; with -benchjson, every result row
// is also written to one JSON file for machine consumption (CI tracks
// the checkpoint/restart perf trajectory this way).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/harness"
)

// benchReport is the -benchjson output document.
type benchReport struct {
	Experiments []benchExperiment `json:"experiments"`
}

type benchExperiment struct {
	ID        string           `json:"id"`
	Title     string           `json:"title"`
	ElapsedMS int64            `json:"elapsed_ms"`
	Tables    []*harness.Table `json:"tables"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind main, split out so tests can drive
// the binary in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cracbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expID     = fs.String("exp", "all", "experiment id (see -list) or \"all\"")
		list      = fs.Bool("list", false, "list experiments and exit")
		compare   = fs.String("compare", "", "baseline -benchjson file: compare it against the new file given as the positional argument and fail on timing regressions")
		gateTol   = fs.Float64("gate-threshold", 0.25, "with -compare: maximum allowed slowdown (0.25 = 25%)")
		gateMinMS = fs.Float64("gate-min-ms", 2.0, "with -compare: ignore baseline timings below this many milliseconds (noise floor)")
		gateSlack = fs.Float64("gate-slack-ms", 10.0, "with -compare: additionally require the slowdown to exceed this many milliseconds")
		gateMD    = fs.String("summary", "", "with -compare: append a markdown summary table to this file (e.g. $GITHUB_STEP_SUMMARY)")
		scale     = fs.Float64("scale", 1.0, "workload scale factor (1.0 = repository default)")
		iters     = fs.Int("iters", 3, "timed repetitions per data point (paper: 10)")
		quick     = fs.Bool("quick", false, "shrink workloads for a fast smoke run")
		full      = fs.Bool("full", false, "enable the most expensive data points (Table 3 sgemm@100MB)")
		outDir    = fs.String("out", "", "directory for CSV output (optional)")
		benchJSON = fs.String("benchjson", "", "file for JSON benchmark output (optional)")
		verbose   = fs.Bool("v", true, "print progress")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *compare != "" {
		if fs.NArg() != 1 {
			fmt.Fprintln(stderr, "cracbench: -compare needs exactly one positional argument: cracbench -compare old.json new.json")
			return 2
		}
		return runCompare(*compare, fs.Arg(0), *gateTol, *gateMinMS, *gateSlack, *gateMD, stdout, stderr)
	}

	if *list {
		fmt.Fprintln(stdout, "Experiments (paper artifact → id):")
		for _, e := range harness.All() {
			fmt.Fprintf(stdout, "  %-10s %s\n", e.ID, e.Title)
			fmt.Fprintf(stdout, "  %-10s paper: %s\n", "", e.Paper)
		}
		return 0
	}

	opt := harness.Options{
		Scale:      *scale,
		Iterations: *iters,
		Quick:      *quick,
		Full:       *full,
	}
	if *verbose {
		opt.Log = stderr
	}

	var exps []*harness.Experiment
	if *expID == "all" {
		exps = harness.All()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e := harness.ByID(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(stderr, "cracbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			exps = append(exps, e)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "cracbench: %v\n", err)
			return 1
		}
	}

	var report benchReport
	for _, e := range exps {
		start := time.Now()
		fmt.Fprintf(stderr, "--- running %s: %s\n", e.ID, e.Title)
		tables, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(stderr, "cracbench: %s: %v\n", e.ID, err)
			return 1
		}
		for i, t := range tables {
			t.Fprint(stdout)
			if *outDir != "" {
				name := t.ID
				if len(tables) > 1 {
					name = fmt.Sprintf("%s_%d", t.ID, i)
				}
				f, err := os.Create(filepath.Join(*outDir, name+".csv"))
				if err != nil {
					fmt.Fprintf(stderr, "cracbench: %v\n", err)
					return 1
				}
				t.CSV(f)
				f.Close()
			}
		}
		elapsed := time.Since(start)
		report.Experiments = append(report.Experiments, benchExperiment{
			ID: e.ID, Title: e.Title, ElapsedMS: elapsed.Milliseconds(), Tables: tables,
		})
		fmt.Fprintf(stderr, "--- %s done in %v\n", e.ID, elapsed.Round(time.Millisecond))
	}
	if *benchJSON != "" {
		b, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "cracbench: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*benchJSON, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "cracbench: %v\n", err)
			return 1
		}
	}
	return 0
}
