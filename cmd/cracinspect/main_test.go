package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	crac "repro"
	"repro/internal/kernels"
)

// writeImage builds a session with a known CUDA footprint and
// checkpoints it under the requested image format version.
func writeImage(t *testing.T, path string, version int) {
	t.Helper()
	s, err := crac.New(crac.WithImageVersion(version))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rt := s.Runtime()
	fat, err := rt.RegisterFatBinary(kernels.Module)
	if err != nil {
		t.Fatal(err)
	}
	for name, k := range kernels.Table() {
		if err := rt.RegisterFunction(fat, name, k); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.Malloc(1 << 20); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.MallocManaged(1 << 16); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.StreamCreate(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CheckpointTo(context.Background(), crac.NewFileStore(path), "img"); err != nil {
		t.Fatal(err)
	}
}

func runInspect(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// TestInspectBothVersions inspects a v1 and a v2 image and checks the
// dump reports the format and the active CUDA state.
func TestInspectBothVersions(t *testing.T) {
	for _, version := range []int{1, 2} {
		path := filepath.Join(t.TempDir(), "ckpt.img")
		writeImage(t, path, version)
		code, out, errOut := runInspect(t, path)
		if code != 0 {
			t.Fatalf("v%d exit = %d, stderr:\n%s", version, code, errOut)
		}
		for _, want := range []string{
			"format: v", "upper-half regions:", "crac.log", "crac.devmem",
			"cudaMalloc:        1 buffers (1048576 bytes)",
			"cudaMallocManaged: 1 buffers (65536 bytes)",
			"streams: 1",
		} {
			if !strings.Contains(out, want) {
				t.Fatalf("v%d dump missing %q:\n%s", version, want, out)
			}
		}
		if !strings.Contains(out, "format: v1") && version == 1 {
			t.Fatalf("v1 image not reported as v1:\n%s", out)
		}
		if !strings.Contains(out, "format: v2") && version == 2 {
			t.Fatalf("v2 image not reported as v2:\n%s", out)
		}
	}
}

func TestInspectLogDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.img")
	writeImage(t, path, 2)
	code, out, _ := runInspect(t, "-log", path)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "log entries:") || !strings.Contains(out, "cudaMalloc") {
		t.Fatalf("-log dump missing entries:\n%s", out)
	}
}

func TestInspectErrors(t *testing.T) {
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.img")
	os.WriteFile(garbage, []byte("this is not an image at all"), 0o644)
	if code, _, errOut := runInspect(t, garbage); code != 1 || !strings.Contains(errOut, "not a valid CRAC image") {
		t.Fatalf("garbage: exit=%d stderr=%q", code, errOut)
	}
	future := filepath.Join(dir, "future.img")
	os.WriteFile(future, []byte("CRACIMG9........"), 0o644)
	if code, _, errOut := runInspect(t, future); code != 1 || !strings.Contains(errOut, "unsupported format version") {
		t.Fatalf("future version: exit=%d stderr=%q", code, errOut)
	}
	if code, _, _ := runInspect(t); code != 2 {
		t.Fatalf("no args: exit=%d, want 2", code)
	}
}

// TestInspectDeltaImage inspects a v3 base and a bare delta: the base
// reports itself as a chain root; the delta reports its lineage, dirty
// ratio, and unmaterialized payload.
func TestInspectDeltaImage(t *testing.T) {
	dir := t.TempDir()
	store, err := crac.NewDirStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := crac.New(crac.WithIncremental(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rt := s.Runtime()
	buf, err := rt.HostAlloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Memset(buf, 0xAB, 1<<20); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.CheckpointTo(ctx, store, "base"); err != nil {
		t.Fatal(err)
	}
	if err := rt.Memset(buf, 0xCD, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CheckpointTo(ctx, store, "delta"); err != nil {
		t.Fatal(err)
	}

	code, out, errOut := runInspect(t, filepath.Join(dir, "base.img"))
	if code != 0 {
		t.Fatalf("base exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "format: v3") || !strings.Contains(out, "base image (chain root)") {
		t.Fatalf("base dump missing v3/base lines:\n%s", out)
	}
	code, out, errOut = runInspect(t, filepath.Join(dir, "delta.img"))
	if code != 0 {
		t.Fatalf("delta exit = %d, stderr:\n%s", code, errOut)
	}
	for _, want := range []string{
		`delta: depth 1, parent "base"`,
		"payload not materialized",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("delta dump missing %q:\n%s", want, out)
		}
	}
}

// TestInspectHTTPStore inspects a delta chain living behind a netstore
// server: the URL form opens the image across the wire, the lineage
// walk resolves every ancestor, and -verify checks the whole chain.
func TestInspectHTTPStore(t *testing.T) {
	store := crac.NewMemStore()
	s, err := crac.New(crac.WithIncremental(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rt := s.Runtime()
	buf, err := rt.HostAlloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i, name := range []string{"gen0", "gen1", "gen2"} {
		if err := rt.Memset(buf, byte(0xA0+i), 8192); err != nil {
			t.Fatal(err)
		}
		if _, err := s.CheckpointTo(ctx, store, name); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(crac.ServeStore(store))
	defer srv.Close()

	code, out, errOut := runInspect(t, "-verify", srv.URL+"/gen2")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	for _, want := range []string{
		`delta: depth 2, parent "gen1"`,
		"lineage:",
		"gen1", "base (chain root)",
		"chain of 3 verified across the wire: gen2 <- gen1 <- gen0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("remote dump missing %q:\n%s", want, out)
		}
	}

	if code, _, errOut := runInspect(t, srv.URL+"/absent"); code != 1 || errOut == "" {
		t.Fatalf("missing remote image: exit=%d stderr=%q", code, errOut)
	}
	if code, _, _ := runInspect(t, "http://"); code != 1 {
		t.Fatalf("malformed store URL accepted")
	}
}
