// Command cracinspect dumps the contents of a CRAC checkpoint image
// without restoring it, through the public crac.Image surface: the
// image format, the upper-half memory regions, the plugin payload
// sections, and a summary of the CUDA call log and the active resources
// it implies.
//
// Images can live on disk or behind a netstore server (crac.ServeStore
// / cracmigrate -serve): an http(s):// argument names an image on such
// a server — everything after the last path segment is the image name,
// the rest is the store base URL — and delta lineage is resolved across
// the wire, hop by hop, through the same ranged reads a lazy restart
// would use.
//
// Usage:
//
//	cracinspect image.img
//	cracinspect -log image.img     # include the full call log
//	cracinspect -verify image.img  # integrity-check and report
//	cracinspect http://ckpt-host:9120/gen042   # image "gen042" on a netstore server
//	cracinspect -dedup ./checkpoints           # dedup report over a whole store
//	cracinspect -dedup http://ckpt-host:9120   # same, across the wire
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	crac "repro"
)

// splitStoreURL splits an http(s) image URL into the store base URL
// and the image name (the last path segment).
func splitStoreURL(arg string) (base, name string, err error) {
	i := strings.LastIndex(arg, "/")
	base, name = arg[:i], arg[i+1:]
	if name == "" || strings.HasSuffix(base, "/") || !strings.Contains(base, "://") {
		return "", "", fmt.Errorf("store URL %q must end in /<image-name>", arg)
	}
	return base, name, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// runDedup prints the content-addressed storage report for a whole
// store: unique vs referenced chunk bytes, the dedup ratio, and the
// chain depth of every lineage it holds.
func runDedup(ctx context.Context, arg string, stdout, stderr io.Writer) int {
	var store crac.Store
	if strings.HasPrefix(arg, "http://") || strings.HasPrefix(arg, "https://") {
		hs, err := crac.NewHTTPStore(arg)
		if err != nil {
			fmt.Fprintln(stderr, "cracinspect:", err)
			return 1
		}
		store = hs
	} else {
		ds, err := crac.NewDirStore(arg, 0)
		if err != nil {
			fmt.Fprintln(stderr, "cracinspect:", err)
			return 1
		}
		store = ds
	}
	st, err := crac.DedupReport(ctx, store)
	if err != nil {
		fmt.Fprintln(stderr, "cracinspect: dedup:", err)
		return 1
	}
	mb := func(b uint64) float64 { return float64(b) / (1 << 20) }
	fmt.Fprintf(stdout, "CRAC store dedup report: %s\n", arg)
	fmt.Fprintf(stdout, "  images: %d (%d content-addressed manifests)\n", st.Images, st.Manifests)
	fmt.Fprintf(stdout, "  chunks: %d unique, %d references, %d orphaned (pending GC)\n",
		st.Chunks, st.ChunkRefs, st.Orphans)
	fmt.Fprintf(stdout, "  bytes:  %.2f MB referenced -> %.2f MB stored (+%.2f MB inline metadata)\n",
		mb(st.ReferencedChunkBytes), mb(st.UniqueChunkBytes), mb(st.InlineBytes))
	if r := st.Ratio(); r > 0 {
		fmt.Fprintf(stdout, "  dedup ratio: %.2fx\n", r)
	} else {
		fmt.Fprintln(stdout, "  dedup ratio: n/a (no content-addressed chunks in this store)")
	}
	if len(st.Lineages) > 0 {
		fmt.Fprintln(stdout, "  lineages:")
		for _, l := range st.Lineages {
			fmt.Fprintf(stdout, "    %-24s chain depth %d\n", l.Tip, l.Depth)
		}
	}
	return 0
}

// run is the whole program behind main, split out so tests can drive
// the binary in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cracinspect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	showLog := fs.Bool("log", false, "dump every call-log entry")
	verify := fs.Bool("verify", false, "integrity-check the image (trailer, shard hashes, log)")
	dedup := fs.Bool("dedup", false, "report content-addressed dedup for a whole store (argument: store dir or base URL)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: cracinspect [-log] [-verify] <image-file | http(s)://host[:port]/image>")
		fmt.Fprintln(stderr, "       cracinspect -dedup <store-dir | http(s)://host[:port]>")
		return 2
	}
	ctx := context.Background()
	arg := fs.Arg(0)
	if *dedup {
		return runDedup(ctx, arg, stdout, stderr)
	}
	var (
		img   *crac.Image
		err   error
		name  string     // image name within store, when remote
		store crac.Store // non-nil when inspecting over the wire
	)
	if strings.HasPrefix(arg, "http://") || strings.HasPrefix(arg, "https://") {
		var base string
		if base, name, err = splitStoreURL(arg); err == nil {
			var hs *crac.HTTPStore
			if hs, err = crac.NewHTTPStore(base); err == nil {
				store = hs
				img, err = crac.OpenImageFrom(ctx, store, name)
			}
		}
	} else {
		img, err = crac.OpenImageFile(arg)
	}
	if err != nil {
		switch {
		case errors.Is(err, crac.ErrUnsupportedVersion):
			fmt.Fprintln(stderr, "cracinspect: image from an unsupported format version:", err)
		case errors.Is(err, crac.ErrCorruptImage):
			fmt.Fprintln(stderr, "cracinspect: corrupt CRAC image (integrity check failed):", err)
		case errors.Is(err, crac.ErrBadImage):
			fmt.Fprintln(stderr, "cracinspect: not a valid CRAC image:", err)
		default:
			fmt.Fprintln(stderr, "cracinspect:", err)
		}
		return 1
	}

	info := img.Info()
	fmt.Fprintf(stdout, "CRAC checkpoint image: %s\n", fs.Arg(0))
	fmt.Fprintf(stdout, "  format: v%d, gzip=%v\n", info.Version, info.Gzip)
	if *verify {
		if store != nil {
			// Remote image: verify the whole delta lineage through the
			// store, the same resolution a restore would perform.
			chain, err := crac.VerifyChain(ctx, store, name)
			if err != nil {
				fmt.Fprintln(stderr, "cracinspect: verify:", err)
				return 1
			}
			fmt.Fprintf(stdout, "  integrity: OK (chain of %d verified across the wire: %s)\n",
				len(chain), strings.Join(chain, " <- "))
		} else {
			if err := img.Verify(ctx); err != nil {
				fmt.Fprintln(stderr, "cracinspect: verify:", err)
				return 1
			}
			if info.Verified {
				fmt.Fprintln(stdout, "  integrity: OK (whole-image trailer checksum verified)")
			} else {
				fmt.Fprintln(stdout, "  integrity: OK (legacy image without trailer; content checks passed)")
			}
		}
	}
	if info.Delta {
		fmt.Fprintf(stdout, "  delta: depth %d, parent %q, %.1f%% dirty (%d of %d shards)\n",
			info.DeltaDepth, info.Parent, 100*info.DirtyRatio, info.ShardsEmitted, info.ShardsTotal)
		if store != nil {
			// With a store at hand the chain is resolvable: report every
			// ancestor hop down to the base.
			fmt.Fprintln(stdout, "  lineage:")
			seen := map[string]bool{name: true}
			for cur := info.Parent; cur != ""; {
				if seen[cur] {
					fmt.Fprintln(stderr, "cracinspect: lineage: cycle at", cur)
					return 1
				}
				seen[cur] = true
				pimg, err := crac.OpenImageFrom(ctx, store, cur)
				if err != nil {
					fmt.Fprintf(stderr, "cracinspect: lineage: opening %q: %v\n", cur, err)
					return 1
				}
				pi := pimg.Info()
				if pi.Delta {
					fmt.Fprintf(stdout, "    %-16s delta depth %d, %.1f%% dirty (%d of %d shards)\n",
						cur, pi.DeltaDepth, 100*pi.DirtyRatio, pi.ShardsEmitted, pi.ShardsTotal)
				} else {
					fmt.Fprintf(stdout, "    %-16s base (chain root), %d shards\n", cur, pi.ShardsTotal)
				}
				cur = pi.Parent
			}
		} else if !info.Materialized {
			fmt.Fprintln(stdout, "  (payload not materialized: restore via the image's store to follow the chain)")
		}
	} else if info.Version >= 3 {
		fmt.Fprintf(stdout, "  base image (chain root), %d shards\n", info.ShardsTotal)
	}
	fmt.Fprintf(stdout, "  upper-half regions: %d (%d bytes)\n", len(info.Regions), info.RegionBytes)
	for _, r := range info.Regions {
		fmt.Fprintf(stdout, "    %012x-%012x %8d  %s  %s\n", r.Start, r.Start+r.Len, r.Len, r.Prot, r.Label)
	}
	fmt.Fprintf(stdout, "  sections: %d\n", len(info.Sections))
	for _, s := range info.Sections {
		fmt.Fprintf(stdout, "    %-16s %d bytes\n", s.Name, s.Size)
	}

	log, err := img.Log()
	if err != nil {
		fmt.Fprintln(stderr, "cracinspect: decoding log:", err)
		return 1
	}
	if log == nil {
		fmt.Fprintln(stdout, "  (no CUDA call log section)")
		return 0
	}
	fmt.Fprintf(stdout, "  CUDA call log: %d entries\n", log.Entries)
	fmt.Fprintf(stdout, "  active at checkpoint:\n")
	fmt.Fprintf(stdout, "    cudaMalloc:        %d buffers (%d bytes)\n", log.Device.Buffers, log.Device.Bytes)
	fmt.Fprintf(stdout, "    cudaMallocHost:    %d buffers (%d bytes)\n", log.Pinned.Buffers, log.Pinned.Bytes)
	fmt.Fprintf(stdout, "    cudaHostAlloc:     %d buffers (%d bytes)\n", log.Host.Buffers, log.Host.Bytes)
	fmt.Fprintf(stdout, "    cudaMallocManaged: %d buffers (%d bytes)\n", log.Managed.Buffers, log.Managed.Bytes)
	fmt.Fprintf(stdout, "    streams: %d, events: %d, fat binaries: %d\n",
		log.Streams, log.Events, len(log.Modules))
	for _, m := range log.Modules {
		fmt.Fprintf(stdout, "      module %q: %d kernels\n", m.Module, m.Kernels)
	}
	if *showLog {
		entries, err := img.LogEntries()
		if err != nil {
			fmt.Fprintln(stderr, "cracinspect: decoding log:", err)
			return 1
		}
		fmt.Fprintln(stdout, "  log entries:")
		for i, e := range entries {
			fmt.Fprintf(stdout, "    %5d  %s\n", i, e)
		}
	}
	return 0
}
