// Command cracinspect dumps the contents of a CRAC checkpoint image:
// the upper-half memory regions, the plugin payload sections, the CUDA
// call log, and the active resources the log implies.
//
// Usage:
//
//	cracinspect image.img
//	cracinspect -log image.img     # include the full call log
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/cracplugin"
	"repro/internal/dmtcp"
	"repro/internal/replaylog"
)

func main() {
	showLog := flag.Bool("log", false, "dump every call-log entry")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cracinspect [-log] <image>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cracinspect:", err)
		os.Exit(1)
	}
	defer f.Close()
	img, err := dmtcp.ReadImage(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cracinspect:", err)
		os.Exit(1)
	}

	fmt.Printf("CRAC checkpoint image: %s\n", flag.Arg(0))
	fmt.Printf("  format: v%d, gzip=%v\n", img.Version, img.Gzip)
	fmt.Printf("  upper-half regions: %d (%d bytes)\n", len(img.Regions), img.TotalRegionBytes())
	for _, r := range img.Regions {
		fmt.Printf("    %012x-%012x %8d  %v  %s\n", r.Start, r.Start+r.Len, r.Len, r.Prot, r.Label)
	}
	fmt.Printf("  sections: %d\n", len(img.Sections.Names()))
	for _, name := range img.Sections.Names() {
		data, _ := img.Sections.Get(name)
		fmt.Printf("    %-16s %d bytes\n", name, len(data))
	}

	logBytes, ok := img.Sections.Get(cracplugin.SectionLog)
	if !ok {
		fmt.Println("  (no CUDA call log section)")
		return
	}
	log, err := replaylog.Decode(bytes.NewReader(logBytes))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cracinspect: decoding log:", err)
		os.Exit(1)
	}
	as := log.Active()
	fmt.Printf("  CUDA call log: %d entries\n", log.Len())
	fmt.Printf("  active at checkpoint:\n")
	fmt.Printf("    cudaMalloc:        %d buffers (%d bytes)\n", len(as.Device), sumAlloc(as.Device))
	fmt.Printf("    cudaMallocHost:    %d buffers (%d bytes)\n", len(as.Pinned), sumAlloc(as.Pinned))
	fmt.Printf("    cudaHostAlloc:     %d buffers (%d bytes)\n", len(as.Host), sumAlloc(as.Host))
	fmt.Printf("    cudaMallocManaged: %d buffers (%d bytes)\n", len(as.Managed), sumAlloc(as.Managed))
	fmt.Printf("    streams: %d, events: %d, fat binaries: %d\n",
		len(as.Streams), len(as.Events), len(as.FatBins))
	for _, fb := range as.FatBins {
		fmt.Printf("      module %q: %d kernels\n", fb.Module, len(fb.Functions))
	}
	if *showLog {
		fmt.Println("  log entries:")
		for i, e := range log.Entries() {
			fmt.Printf("    %5d  %s\n", i, e)
		}
	}
}

func sumAlloc(as []replaylog.Allocation) uint64 {
	var n uint64
	for _, a := range as {
		n += a.Size
	}
	return n
}
