// Command cracinspect dumps the contents of a CRAC checkpoint image
// without restoring it, through the public crac.Image surface: the
// image format, the upper-half memory regions, the plugin payload
// sections, and a summary of the CUDA call log and the active resources
// it implies.
//
// Usage:
//
//	cracinspect image.img
//	cracinspect -log image.img     # include the full call log
//	cracinspect -verify image.img  # integrity-check and report
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	crac "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind main, split out so tests can drive
// the binary in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cracinspect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	showLog := fs.Bool("log", false, "dump every call-log entry")
	verify := fs.Bool("verify", false, "integrity-check the image (trailer, shard hashes, log)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: cracinspect [-log] [-verify] <image>")
		return 2
	}
	img, err := crac.OpenImageFile(fs.Arg(0))
	if err != nil {
		switch {
		case errors.Is(err, crac.ErrUnsupportedVersion):
			fmt.Fprintln(stderr, "cracinspect: image from an unsupported format version:", err)
		case errors.Is(err, crac.ErrCorruptImage):
			fmt.Fprintln(stderr, "cracinspect: corrupt CRAC image (integrity check failed):", err)
		case errors.Is(err, crac.ErrBadImage):
			fmt.Fprintln(stderr, "cracinspect: not a valid CRAC image:", err)
		default:
			fmt.Fprintln(stderr, "cracinspect:", err)
		}
		return 1
	}

	info := img.Info()
	fmt.Fprintf(stdout, "CRAC checkpoint image: %s\n", fs.Arg(0))
	fmt.Fprintf(stdout, "  format: v%d, gzip=%v\n", info.Version, info.Gzip)
	if *verify {
		if err := img.Verify(context.Background()); err != nil {
			fmt.Fprintln(stderr, "cracinspect: verify:", err)
			return 1
		}
		if info.Verified {
			fmt.Fprintln(stdout, "  integrity: OK (whole-image trailer checksum verified)")
		} else {
			fmt.Fprintln(stdout, "  integrity: OK (legacy image without trailer; content checks passed)")
		}
	}
	if info.Delta {
		fmt.Fprintf(stdout, "  delta: depth %d, parent %q, %.1f%% dirty (%d of %d shards)\n",
			info.DeltaDepth, info.Parent, 100*info.DirtyRatio, info.ShardsEmitted, info.ShardsTotal)
		if !info.Materialized {
			fmt.Fprintln(stdout, "  (payload not materialized: restore via the image's store to follow the chain)")
		}
	} else if info.Version >= 3 {
		fmt.Fprintf(stdout, "  base image (chain root), %d shards\n", info.ShardsTotal)
	}
	fmt.Fprintf(stdout, "  upper-half regions: %d (%d bytes)\n", len(info.Regions), info.RegionBytes)
	for _, r := range info.Regions {
		fmt.Fprintf(stdout, "    %012x-%012x %8d  %s  %s\n", r.Start, r.Start+r.Len, r.Len, r.Prot, r.Label)
	}
	fmt.Fprintf(stdout, "  sections: %d\n", len(info.Sections))
	for _, s := range info.Sections {
		fmt.Fprintf(stdout, "    %-16s %d bytes\n", s.Name, s.Size)
	}

	log, err := img.Log()
	if err != nil {
		fmt.Fprintln(stderr, "cracinspect: decoding log:", err)
		return 1
	}
	if log == nil {
		fmt.Fprintln(stdout, "  (no CUDA call log section)")
		return 0
	}
	fmt.Fprintf(stdout, "  CUDA call log: %d entries\n", log.Entries)
	fmt.Fprintf(stdout, "  active at checkpoint:\n")
	fmt.Fprintf(stdout, "    cudaMalloc:        %d buffers (%d bytes)\n", log.Device.Buffers, log.Device.Bytes)
	fmt.Fprintf(stdout, "    cudaMallocHost:    %d buffers (%d bytes)\n", log.Pinned.Buffers, log.Pinned.Bytes)
	fmt.Fprintf(stdout, "    cudaHostAlloc:     %d buffers (%d bytes)\n", log.Host.Buffers, log.Host.Bytes)
	fmt.Fprintf(stdout, "    cudaMallocManaged: %d buffers (%d bytes)\n", log.Managed.Buffers, log.Managed.Bytes)
	fmt.Fprintf(stdout, "    streams: %d, events: %d, fat binaries: %d\n",
		log.Streams, log.Events, len(log.Modules))
	for _, m := range log.Modules {
		fmt.Fprintf(stdout, "      module %q: %d kernels\n", m.Module, m.Kernels)
	}
	if *showLog {
		entries, err := img.LogEntries()
		if err != nil {
			fmt.Fprintln(stderr, "cracinspect: decoding log:", err)
			return 1
		}
		fmt.Fprintln(stdout, "  log entries:")
		for i, e := range entries {
			fmt.Fprintf(stdout, "    %5d  %s\n", i, e)
		}
	}
	return 0
}
