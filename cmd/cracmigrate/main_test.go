package main

import (
	"strings"
	"testing"
)

func runMigrateCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// TestLoopbackSmoke runs the full in-process demo: a DirStore served
// over a real loopback listener, a mutating workload live-migrated
// into it, the chain verified end to end.
func TestLoopbackSmoke(t *testing.T) {
	code, out, errOut := runMigrateCmd(t, "-loopback", "-rounds", "4")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s\nstdout:\n%s", code, errOut, out)
	}
	for _, want := range []string{
		"serving image store",
		"migrate-0", "base",
		"migrate-final", "cut",
		"downtime:",
		"destination chain verified",
		"migration complete",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("loopback output missing %q:\n%s", want, out)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runMigrateCmd(t); code != 2 {
		t.Fatalf("no args: exit = %d, want 2", code)
	}
	if code, _, errOut := runMigrateCmd(t, "-serve", ":0"); code != 2 || !strings.Contains(errOut, "-dir") {
		t.Fatalf("-serve without -dir: exit = %d, stderr = %q", code, errOut)
	}
	if code, _, _ := runMigrateCmd(t, "-dst", "ftp://nope"); code != 1 {
		t.Fatalf("bad -dst scheme: exit = %d, want 1", code)
	}
}
