// Command cracmigrate demonstrates live migration of a CRAC session
// between two processes over the netstore protocol.
//
// The destination role serves a directory-backed image store over
// HTTP; any number of sources can migrate into it:
//
//	cracmigrate -serve :9120 -dir /var/crac/images [-keep 8]
//
// The source role runs a demo GPU workload (kernels launching, a
// mutator dirtying its working set) and live-migrates it into such a
// server, printing the pre-copy round report and the downtime summary:
//
//	cracmigrate -dst http://ckpt-host:9120 [-rounds 6]
//
// -loopback runs both roles in one process over 127.0.0.1 — a
// self-contained smoke of the whole protocol stack (pre-copy deltas,
// final CoW cut, lazy activation, post-copy replication) with no setup:
//
//	cracmigrate -loopback
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	crac "repro"
	"repro/internal/crt"
	"repro/internal/kernels"
	"repro/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind main, split out so tests can drive
// the binary in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cracmigrate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		serveAddr = fs.String("serve", "", "destination role: listen address for the image store server (e.g. :9120)")
		dir       = fs.String("dir", "", "with -serve: backing directory for received images")
		keep      = fs.Int("keep", 0, "with -serve: retain only the N most recent images (0 = all)")
		dst       = fs.String("dst", "", "source role: destination store base URL (http(s)://host:port)")
		rounds    = fs.Int("rounds", 5, "source role: maximum pre-copy rounds before the final cut")
		loopback  = fs.Bool("loopback", false, "run source and destination in-process over 127.0.0.1")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "cracmigrate:", err)
		return 1
	}
	switch {
	case *loopback:
		tmp, err := os.MkdirTemp("", "cracmigrate-")
		if err != nil {
			return fail(err)
		}
		defer os.RemoveAll(tmp)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		defer ln.Close()
		if err := serveOn(ln, tmp, *keep, stdout, false); err != nil {
			return fail(err)
		}
		return source(fmt.Sprintf("http://%s", ln.Addr()), *rounds, stdout, stderr)
	case *serveAddr != "":
		if *dir == "" {
			fmt.Fprintln(stderr, "cracmigrate: -serve requires -dir")
			return 2
		}
		ln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			return fail(err)
		}
		if err := serveOn(ln, *dir, *keep, stdout, true); err != nil {
			return fail(err)
		}
		return 0
	case *dst != "":
		return source(*dst, *rounds, stdout, stderr)
	}
	fmt.Fprintln(stderr, "usage: cracmigrate -serve ADDR -dir DIR [-keep N] | -dst URL [-rounds N] | -loopback")
	return 2
}

// serveOn serves a DirStore on ln; block=false runs the server in the
// background (the loopback demo's destination half).
func serveOn(ln net.Listener, dir string, keep int, stdout io.Writer, block bool) error {
	store, err := crac.NewDirStore(dir, keep)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "cracmigrate: serving image store %s on http://%s\n", dir, ln.Addr())
	srv := &http.Server{Handler: crac.ServeStore(store)}
	if block {
		return srv.Serve(ln)
	}
	go srv.Serve(ln)
	return nil
}

// source runs the demo workload and live-migrates it to the store at
// baseURL, reporting rounds and downtime.
func source(baseURL string, rounds int, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "cracmigrate:", err)
		return 1
	}
	dst, err := crac.NewHTTPStore(baseURL)
	if err != nil {
		return fail(err)
	}
	const (
		bufSize = uint64(512 << 10)
		bufs    = 8
	)
	reg := crac.NewKernelRegistry().AddTable(kernels.Module, kernels.Table())
	s, err := crac.New(crac.WithWorkers(0), crac.WithIncremental(64),
		crac.WithShardSize(128<<10), crac.WithKernels(reg))
	if err != nil {
		return fail(err)
	}
	defer s.Close()
	rt := s.Runtime()
	fat, err := rt.RegisterFatBinary(kernels.Module)
	if err != nil {
		return fail(err)
	}
	for name, k := range kernels.Table() {
		if err := rt.RegisterFunction(fat, name, k); err != nil {
			return fail(err)
		}
	}
	var host, dev []uint64
	for i := 0; i < bufs; i++ {
		h, err := rt.HostAlloc(bufSize)
		if err != nil {
			return fail(err)
		}
		if err := rt.Memset(h, byte(i+1), bufSize); err != nil {
			return fail(err)
		}
		host = append(host, h)
		d, err := rt.Malloc(bufSize)
		if err != nil {
			return fail(err)
		}
		if err := rt.Memset(d, byte(0x5B*i+17), bufSize); err != nil {
			return fail(err)
		}
		dev = append(dev, d)
	}
	// The workload keeps executing while pre-copy streams: kernels on
	// the device, a mutator over a bounded hot set.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := rt.LaunchKernel(fat, "fill", workloads.Launch1D(int(bufSize/8)), crt.DefaultStream,
				dev[i%2], kernels.F32Arg(float32(i)), bufSize/8); err != nil {
				return
			}
			if err := rt.Memset(host[i%2], byte(i), bufSize/4); err != nil {
				return
			}
		}
	}()
	defer func() {
		close(stop)
		// A successful migration leaves the source quiesced at the cut;
		// release it so a mutator parked at the launch gate can observe
		// stop and exit. ErrNotQuiesced (migration failed early) is fine.
		s.Resume()
		wg.Wait()
	}()

	fmt.Fprintf(stdout, "cracmigrate: migrating demo session (%d buffers x %dKB host+device) to %s\n",
		bufs, bufSize>>10, dst.BaseURL())
	ctx := context.Background()
	src := crac.NewMemStore() // source-side staging for the final cut
	t0 := time.Now()
	m, err := crac.Migrate(ctx, s, src, dst,
		crac.WithMigrateRounds(rounds), crac.WithMigrateRoundDelay(2*time.Millisecond))
	if err != nil {
		return fail(err)
	}
	defer m.Dest.Close()
	rep := m.Report

	fmt.Fprintln(stdout, "round  image            kind     payload      shards   pause")
	for i, r := range rep.Rounds {
		kind := "base"
		if r.Delta {
			kind = "delta"
		}
		if r.Final {
			kind = "cut"
		}
		fmt.Fprintf(stdout, "%5d  %-15s  %-7s  %9s  %4d/%-4d  %s\n",
			i, r.Name, kind, fmtBytes(r.PayloadBytes), r.DirtyShards, r.TotalShards, r.Pause)
	}
	fmt.Fprintf(stdout, "pre-copy: %s over %d rounds (converged=%v); final cut: %s\n",
		fmtBytes(rep.PreCopyBytes), len(rep.Rounds)-1, rep.Converged, fmtBytes(rep.FinalBytes))
	fmt.Fprintf(stdout, "downtime: %s (source stopped -> destination executing); total %s\n",
		rep.Downtime, time.Since(t0))

	// Post-copy tail: wait for the destination store to hold the whole
	// chain, then prove it with an end-to-end chain verification.
	if err := m.Wait(); err != nil {
		return fail(fmt.Errorf("post-copy tail: %w", err))
	}
	chain, err := crac.VerifyChain(ctx, dst, rep.Tip)
	if err != nil {
		return fail(fmt.Errorf("verifying migrated chain: %w", err))
	}
	fmt.Fprintf(stdout, "destination chain verified: %d images, tip %q\n", len(chain), rep.Tip)
	if err := m.Dest.Runtime().DeviceSynchronize(); err != nil {
		return fail(err)
	}
	fmt.Fprintln(stdout, "destination session executing; migration complete")
	return 0
}

// fmtBytes renders a byte count compactly.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
