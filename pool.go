package crac

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/addrspace"
	"repro/internal/dmtcp"
)

// A Pool multiplexes many Sessions — hundreds to thousands — over one
// shared Store and one shared machine. Where a bare Session assumes it
// owns the process (a worker per CPU, checkpoints whenever it likes),
// a Pool is the fleet view:
//
//   - Admission control and quotas. Open rejects sessions past the
//     pool bound (ErrPoolSaturated) or the tenant's MaxSessions
//     (ErrQuotaExceeded); a tenant's concurrent checkpoints are capped
//     by MaxInFlight and its stored image bytes by MaxStoredBytes,
//     both rejected with ErrQuotaExceeded.
//   - Shared pipeline workers. Every pooled session's checkpoint
//     pipeline draws from one bounded dmtcp.WorkerBudget instead of
//     spinning up workers-per-CPU each, so N concurrent checkpoints
//     cost one machine's worth of CPU and one buffer economy.
//   - Staggered epoch cuts. Each copy-on-write checkpoint retains up
//     to its session's mapped footprint in pages until the image is
//     written. The scheduler admits cuts against a global
//     retained-page budget (and an in-flight cap) in deadline order,
//     so concurrent snapshots never stampede memory and no tenant
//     starves behind a greedy one.
//   - PoolStats: per-tenant and aggregate checkpoint counts,
//     p50/p95/p99 checkpoint latency, the retained-page high-water
//     mark, and every admission rejection.
//
// All methods are safe for concurrent use; each PoolSession is a
// single logical client and follows Session's own concurrency rules.
type Pool struct {
	store  Store
	budget *dmtcp.WorkerBudget
	cfg    poolSettings

	mu        sync.Mutex
	cond      *sync.Cond // broadcast when cuts/sessions drain; Close waits on it
	closed    bool
	tenants   map[string]*poolTenant
	sessions  map[*PoolSession]struct{}
	nsessions int    // open + being-opened sessions (reserved slots)
	seq       uint64 // FIFO tiebreak for equal-deadline waiters

	inFlight      int          // admitted, unreleased cuts
	reservedPages int64        // pages reserved by admitted cuts
	reservedPeak  int64        // high-water mark of reservedPages
	waiters       []*cutWaiter // deadline-ordered admission queue

	lat latencySketch // aggregate checkpoint latency

	checkpoints       atomic.Uint64
	restarts          atomic.Uint64
	failures          atomic.Uint64
	rejectedQuota     atomic.Uint64
	rejectedSaturated atomic.Uint64
}

// TenantQuota bounds one tenant's slice of a Pool. Zero fields are
// unlimited.
type TenantQuota struct {
	// MaxSessions caps the tenant's concurrently open sessions.
	MaxSessions int
	// MaxInFlight caps the tenant's concurrently running checkpoints;
	// the excess is rejected immediately (ErrQuotaExceeded), not
	// queued — the stagger queue is for pool-wide pressure, not for
	// one tenant's burst.
	MaxInFlight int
	// MaxStoredBytes caps the tenant's total image bytes in the
	// pool's store. A checkpoint that would cross the budget aborts
	// mid-write (the Store's all-or-nothing Put discards the partial
	// image) with ErrQuotaExceeded.
	MaxStoredBytes int64
}

type poolSettings struct {
	maxSessions int           // pool-wide session cap; 0 unlimited
	workers     int           // shared pipeline worker bound; 0 = GOMAXPROCS
	maxInFlight int           // pool-wide concurrent cut cap; 0 unlimited
	pageBudget  int64         // global retained-page budget; 0 unlimited
	admitWait   time.Duration // stagger-queue wait bound; 0 = wait for ctx
	quota       TenantQuota   // default quota for every tenant
	quotas      map[string]TenantQuota
	sessionOpts []Option
}

// A PoolOption configures a Pool built by NewPool.
type PoolOption func(*poolSettings)

// WithPoolMaxSessions caps how many sessions the pool will hold open
// at once, across all tenants (n <= 0: unlimited). Open past the cap
// fails with ErrPoolSaturated.
func WithPoolMaxSessions(n int) PoolOption {
	return func(s *poolSettings) { s.maxSessions = n }
}

// WithPoolWorkers bounds the shared checkpoint-pipeline worker set all
// pooled sessions draw from (default: one per CPU). This replaces the
// per-engine fan-out: no matter how many checkpoints run, at most n
// shards are being read/compressed at once.
func WithPoolWorkers(n int) PoolOption {
	return func(s *poolSettings) { s.workers = n }
}

// WithPoolMaxConcurrentCuts caps how many checkpoints may run
// concurrently across the pool (n <= 0: unlimited). The excess waits
// in the stagger queue in deadline order.
func WithPoolMaxConcurrentCuts(n int) PoolOption {
	return func(s *poolSettings) { s.maxInFlight = n }
}

// WithPoolPageBudget sets the global retained-page budget (in
// addrspace pages of 4 KiB) the stagger scheduler admits epoch cuts
// against: a checkpoint is admitted only when the pages it may retain
// — its session's mapped footprint at admission — fit under the
// budget alongside every other admitted cut. pages <= 0 removes the
// budget. A single cut larger than the whole budget is admitted alone
// rather than deadlocked.
func WithPoolPageBudget(pages int64) PoolOption {
	return func(s *poolSettings) { s.pageBudget = pages }
}

// WithPoolAdmissionTimeout bounds how long a checkpoint may wait in
// the stagger queue before it is rejected with ErrPoolSaturated
// (d <= 0: wait until the context says otherwise). The timeout also
// serves as the waiter's scheduling deadline.
func WithPoolAdmissionTimeout(d time.Duration) PoolOption {
	return func(s *poolSettings) { s.admitWait = d }
}

// WithPoolTenantDefaults sets the quota every tenant gets unless
// overridden by WithPoolTenantQuota.
func WithPoolTenantDefaults(q TenantQuota) PoolOption {
	return func(s *poolSettings) { s.quota = q }
}

// WithPoolTenantQuota overrides the quota for one named tenant.
func WithPoolTenantQuota(tenant string, q TenantQuota) PoolOption {
	return func(s *poolSettings) {
		if s.quotas == nil {
			s.quotas = make(map[string]TenantQuota)
		}
		s.quotas[tenant] = q
	}
}

// WithPoolSessionOptions sets default Session options applied to every
// Open (the per-Open options append after these, so they win).
func WithPoolSessionOptions(opts ...Option) PoolOption {
	return func(s *poolSettings) { s.sessionOpts = append(s.sessionOpts, opts...) }
}

// NewPool builds a Pool over the shared store.
func NewPool(store Store, opts ...PoolOption) (*Pool, error) {
	if store == nil {
		return nil, fmt.Errorf("crac: NewPool: nil store")
	}
	var cfg poolSettings
	for _, o := range opts {
		o(&cfg)
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		store:    store,
		budget:   dmtcp.NewWorkerBudget(workers),
		cfg:      cfg,
		tenants:  make(map[string]*poolTenant),
		sessions: make(map[*PoolSession]struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	return p, nil
}

// tenantSep joins tenant and image name in the shared store's
// namespace; tenants may not contain it.
const tenantSep = "--"

func validTenant(tenant string) error {
	if tenant == "" || strings.Contains(tenant, tenantSep) ||
		strings.ContainsAny(tenant, `/\`) || tenant[0] == '.' {
		return fmt.Errorf("crac: invalid tenant name %q", tenant)
	}
	return nil
}

func (p *Pool) tenantLocked(name string) *poolTenant {
	t := p.tenants[name]
	if t == nil {
		q := p.cfg.quota
		if o, ok := p.cfg.quotas[name]; ok {
			q = o
		}
		t = &poolTenant{name: name, quota: q, sizes: make(map[string]int64)}
		p.tenants[name] = t
	}
	return t
}

// Open admits a new session for the tenant, subject to the pool's
// session cap (ErrPoolSaturated) and the tenant's MaxSessions quota
// (ErrQuotaExceeded). The session is built from the pool's default
// options plus opts and attached to the shared worker budget; close it
// through the returned PoolSession.
func (p *Pool) Open(tenant string, opts ...Option) (*PoolSession, error) {
	if err := validTenant(tenant); err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if p.cfg.maxSessions > 0 && p.nsessions >= p.cfg.maxSessions {
		p.rejectedSaturated.Add(1)
		n := p.nsessions
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: %d sessions open (pool max %d)",
			ErrPoolSaturated, n, p.cfg.maxSessions)
	}
	t := p.tenantLocked(tenant)
	if t.quota.MaxSessions > 0 && t.sessions >= t.quota.MaxSessions {
		t.rejectedQuota.Add(1)
		p.rejectedQuota.Add(1)
		n := t.sessions
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant %q has %d sessions open (quota %d)",
			ErrQuotaExceeded, tenant, n, t.quota.MaxSessions)
	}
	// Reserve both slots before the (comparatively slow) session build
	// so concurrent Opens cannot overshoot the caps.
	p.nsessions++
	t.sessions++
	p.mu.Unlock()

	release := func() {
		p.mu.Lock()
		p.nsessions--
		t.sessions--
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	all := make([]Option, 0, len(p.cfg.sessionOpts)+len(opts)+1)
	all = append(all, p.cfg.sessionOpts...)
	all = append(all, opts...)
	all = append(all, withWorkerBudget(p.budget))
	s, err := New(all...)
	if err != nil {
		release()
		return nil, err
	}
	ps := &PoolSession{p: p, t: t, s: s}
	ps.store = wrapTenantStore(p, t, p.store)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		s.Close()
		release()
		return nil, ErrPoolClosed
	}
	p.sessions[ps] = struct{}{}
	p.mu.Unlock()
	return ps, nil
}

// Close drains the pool: no new sessions or checkpoints are admitted,
// queued waiters are rejected with ErrPoolClosed, in-flight
// checkpoints are waited out, and every remaining session is closed.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for _, w := range p.waiters {
		close(w.ready) // admitted stays false: the waiter reads ErrPoolClosed
	}
	p.waiters = nil
	for p.inFlight > 0 {
		p.cond.Wait()
	}
	open := make([]*PoolSession, 0, len(p.sessions))
	for ps := range p.sessions {
		open = append(open, ps)
	}
	p.mu.Unlock()
	for _, ps := range open {
		ps.Close()
	}
	return nil
}

// RetainedPages sums the copy-on-write pages currently retained across
// every open session — the live figure the scheduler's reserved-page
// accounting bounds from above. After Close (or with no checkpoint in
// flight) it is zero.
func (p *Pool) RetainedPages() int64 {
	p.mu.Lock()
	open := make([]*PoolSession, 0, len(p.sessions))
	for ps := range p.sessions {
		open = append(open, ps)
	}
	p.mu.Unlock()
	var total int64
	for _, ps := range open {
		total += ps.s.Space().RetainedPages()
	}
	return total
}

// ---- stagger scheduler ----

// A cutWaiter is one checkpoint waiting for epoch-cut admission:
// inFlight and reserved retained pages are charged when it is admitted
// and returned by releaseCut.
type cutWaiter struct {
	deadline    time.Time
	hasDeadline bool
	seq         uint64
	pages       int64
	ready       chan struct{} // closed on admission (or pool close)
	admitted    bool          // guarded by Pool.mu
}

// waiterLess orders the admission queue: earliest deadline first
// (waiters with no deadline sort last), FIFO within ties. Deadline
// order is what keeps a tenant with a tight budget from starving
// behind an unbounded backlog.
func waiterLess(a, b *cutWaiter) bool {
	if a.hasDeadline != b.hasDeadline {
		return a.hasDeadline
	}
	if a.hasDeadline && !a.deadline.Equal(b.deadline) {
		return a.deadline.Before(b.deadline)
	}
	return a.seq < b.seq
}

func (p *Pool) insertWaiterLocked(w *cutWaiter) {
	i := sort.Search(len(p.waiters), func(i int) bool {
		return waiterLess(w, p.waiters[i])
	})
	p.waiters = append(p.waiters, nil)
	copy(p.waiters[i+1:], p.waiters[i:])
	p.waiters[i] = w
}

// dispatchLocked admits waiters strictly from the head of the
// deadline-ordered queue while both the in-flight cap and the
// retained-page budget have room. Head-of-line blocking is deliberate:
// letting small cuts overtake a big one would starve it forever.
func (p *Pool) dispatchLocked() {
	for len(p.waiters) > 0 {
		w := p.waiters[0]
		if p.cfg.maxInFlight > 0 && p.inFlight >= p.cfg.maxInFlight {
			return
		}
		// An oversized cut (pages > the whole budget) is admitted when
		// the pool is otherwise idle — it then holds the budget alone.
		if p.cfg.pageBudget > 0 && p.reservedPages > 0 &&
			p.reservedPages+w.pages > p.cfg.pageBudget {
			return
		}
		p.waiters = p.waiters[1:]
		w.admitted = true
		p.inFlight++
		p.reservedPages += w.pages
		if p.reservedPages > p.reservedPeak {
			p.reservedPeak = p.reservedPages
		}
		close(w.ready)
	}
}

// acquireCut queues one checkpoint for epoch-cut admission and blocks
// until it is admitted, the context is done, or the admission timeout
// expires (ErrPoolSaturated).
func (p *Pool) acquireCut(ctx context.Context, t *poolTenant, pages int64) (*cutWaiter, error) {
	w := &cutWaiter{pages: pages, ready: make(chan struct{})}
	if p.cfg.admitWait > 0 {
		w.deadline, w.hasDeadline = time.Now().Add(p.cfg.admitWait), true
	}
	if d, ok := ctx.Deadline(); ok && (!w.hasDeadline || d.Before(w.deadline)) {
		w.deadline, w.hasDeadline = d, true
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	p.seq++
	w.seq = p.seq
	p.insertWaiterLocked(w)
	p.dispatchLocked()
	p.mu.Unlock()

	var timeout <-chan time.Time
	if p.cfg.admitWait > 0 {
		tm := time.NewTimer(p.cfg.admitWait)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case <-w.ready:
		p.mu.Lock()
		ok := w.admitted
		p.mu.Unlock()
		if !ok {
			return nil, ErrPoolClosed
		}
		return w, nil
	case <-ctx.Done():
		if p.abandonWaiter(w) {
			p.releaseCut(w) // admission raced the cancellation
		}
		return nil, wrapCancelled(fmt.Errorf("%w while waiting for checkpoint admission", ctx.Err()))
	case <-timeout:
		if p.abandonWaiter(w) {
			return w, nil // admission raced the timer: proceed
		}
		t.rejectedSaturated.Add(1)
		p.rejectedSaturated.Add(1)
		return nil, fmt.Errorf("%w: checkpoint admission waited %v (concurrent-cut cap or retained-page budget exhausted)",
			ErrPoolSaturated, p.cfg.admitWait)
	}
}

// abandonWaiter removes w from the queue, reporting true if w had
// already been admitted (its reservation then belongs to the caller).
func (p *Pool) abandonWaiter(w *cutWaiter) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if w.admitted {
		return true
	}
	for i, q := range p.waiters {
		if q == w {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			break
		}
	}
	return false
}

func (p *Pool) releaseCut(w *cutWaiter) {
	p.mu.Lock()
	p.inFlight--
	p.reservedPages -= w.pages
	p.dispatchLocked()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// ---- per-tenant state ----

type poolTenant struct {
	name  string
	quota TenantQuota

	sessions int // guarded by Pool.mu
	inFlight int // guarded by Pool.mu

	stored  atomic.Int64 // committed image bytes in the shared store
	pending atomic.Int64 // bytes of in-flight Puts, reserved against the budget

	checkpoints       atomic.Uint64
	restarts          atomic.Uint64
	failures          atomic.Uint64
	rejectedQuota     atomic.Uint64
	rejectedSaturated atomic.Uint64

	mu    sync.Mutex
	sizes map[string]int64 // committed bytes per image name
	lat   latencySketch
}

// A PoolSession is one tenant session inside a Pool: the embedded
// Session plus the pool's admission, quota, and accounting wrapped
// around its store-bound operations. Image names are scoped to the
// tenant ("tenant--name" in the shared store).
type PoolSession struct {
	p     *Pool
	t     *poolTenant
	s     *Session
	store Store // tenant-accounted view of the pool store

	mu     sync.Mutex
	closed bool
}

// Session exposes the underlying Session (its Runtime, Quiesce/Resume,
// and inspection surface). Checkpoint and restart through the
// PoolSession methods so the pool's scheduling and accounting apply.
func (ps *PoolSession) Session() *Session { return ps.s }

// Tenant reports the owning tenant's name.
func (ps *PoolSession) Tenant() string { return ps.t.name }

func (p *Pool) imageName(tenant, name string) string {
	return tenant + tenantSep + name
}

// cutPages estimates the retained-page exposure of checkpointing this
// session now: its whole mapped footprint, the most a copy-on-write
// snapshot can retain. Regions mapped after the cut is armed never
// join the snapshot, so the estimate is an upper bound for memory
// mapped at admission.
func (ps *PoolSession) cutPages() int64 {
	sp := ps.s.Space()
	b := sp.MappedBytes(addrspace.HalfUpper) + sp.MappedBytes(addrspace.HalfLower)
	return int64((b + addrspace.PageSize - 1) / addrspace.PageSize)
}

// Checkpoint writes the session's image under the tenant-scoped name,
// subject to the tenant's MaxInFlight and MaxStoredBytes quotas
// (ErrQuotaExceeded) and the pool's stagger scheduler
// (ErrPoolSaturated after the admission timeout). Latency — including
// the admission wait — lands in the pool's percentile stats.
func (ps *PoolSession) Checkpoint(ctx context.Context, name string) (Stats, error) {
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		return Stats{}, ErrSessionClosed
	}
	ps.mu.Unlock()
	p, t := ps.p, ps.t

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return Stats{}, ErrPoolClosed
	}
	if t.quota.MaxInFlight > 0 && t.inFlight >= t.quota.MaxInFlight {
		t.rejectedQuota.Add(1)
		p.rejectedQuota.Add(1)
		n := t.inFlight
		p.mu.Unlock()
		return Stats{}, fmt.Errorf("%w: tenant %q has %d checkpoints in flight (quota %d)",
			ErrQuotaExceeded, t.name, n, t.quota.MaxInFlight)
	}
	t.inFlight++
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		t.inFlight--
		p.mu.Unlock()
	}()

	start := time.Now()
	w, err := p.acquireCut(ctx, t, ps.cutPages())
	if err != nil {
		return Stats{}, err
	}
	st, err := ps.s.CheckpointTo(ctx, ps.store, p.imageName(t.name, name))
	p.releaseCut(w)
	if err != nil {
		t.failures.Add(1)
		p.failures.Add(1)
		return st, err
	}
	d := time.Since(start)
	t.checkpoints.Add(1)
	p.checkpoints.Add(1)
	t.lat.record(d)
	p.lat.record(d)
	return st, nil
}

// Restart restores the session from the tenant-scoped image name.
// Restarts read — they retain no copy-on-write pages — so they bypass
// the cut scheduler; only the shared worker budget paces their refill
// against running checkpoints.
func (ps *PoolSession) Restart(ctx context.Context, name string) error {
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		return ErrSessionClosed
	}
	ps.mu.Unlock()
	err := ps.s.RestartFrom(ctx, ps.store, ps.p.imageName(ps.t.name, name))
	if err != nil {
		ps.t.failures.Add(1)
		ps.p.failures.Add(1)
		return err
	}
	ps.t.restarts.Add(1)
	ps.p.restarts.Add(1)
	return nil
}

// Delete removes the tenant-scoped image and credits its bytes back
// to the tenant's stored-bytes budget.
func (ps *PoolSession) Delete(ctx context.Context, name string) error {
	return ps.store.Delete(ctx, ps.p.imageName(ps.t.name, name))
}

// Images lists the tenant's images (names unscoped).
func (ps *PoolSession) Images(ctx context.Context) ([]string, error) {
	names, err := ps.store.List(ctx)
	if err != nil {
		return nil, err
	}
	prefix := ps.t.name + tenantSep
	out := names[:0]
	for _, n := range names {
		if strings.HasPrefix(n, prefix) {
			out = append(out, strings.TrimPrefix(n, prefix))
		}
	}
	return out, nil
}

// Close closes the underlying session and releases its pool and
// tenant slots. Idempotent.
func (ps *PoolSession) Close() {
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		return
	}
	ps.closed = true
	ps.mu.Unlock()
	ps.s.Close()
	p := ps.p
	p.mu.Lock()
	if _, ok := p.sessions[ps]; ok {
		delete(p.sessions, ps)
		p.nsessions--
		ps.t.sessions--
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// ---- tenant-accounted store ----

// tenantStore wraps the pool's shared Store with per-tenant
// stored-bytes accounting: Put meters bytes as they stream and aborts
// the moment the tenant's budget would be crossed (the Store's
// all-or-nothing contract then discards the partial image), and
// successful Puts/Deletes keep a per-image ledger so replacing an
// image charges only the difference. The ledger tracks what the pool
// wrote; retention pruning inside a DirStore or an external GC is
// credited only when the pool observes the Delete.
type tenantStore struct {
	t     *poolTenant
	inner Store
}

// wrapTenantStore preserves the RandomAccessStore capability of the
// shared store (lazy restarts need GetAt), mirroring WithRetry.
func wrapTenantStore(p *Pool, t *poolTenant, inner Store) Store {
	ts := tenantStore{t: t, inner: inner}
	if _, ok := inner.(RandomAccessStore); ok {
		return &tenantStoreRA{ts}
	}
	return &ts
}

func (ts *tenantStore) Put(ctx context.Context, name string, write func(io.Writer) error) error {
	t := ts.t
	var counted int64
	err := ts.inner.Put(ctx, name, func(w io.Writer) error {
		qw := &quotaWriter{w: w, t: t}
		err := write(qw)
		counted = qw.n
		t.pending.Add(-qw.claimed)
		return err
	})
	if err != nil {
		return err
	}
	t.mu.Lock()
	old := t.sizes[name]
	t.sizes[name] = counted
	t.mu.Unlock()
	t.stored.Add(counted - old)
	return nil
}

func (ts *tenantStore) Get(ctx context.Context, name string) (io.ReadCloser, error) {
	return ts.inner.Get(ctx, name)
}

func (ts *tenantStore) List(ctx context.Context) ([]string, error) {
	return ts.inner.List(ctx)
}

func (ts *tenantStore) Delete(ctx context.Context, name string) error {
	if err := ts.inner.Delete(ctx, name); err != nil {
		return err
	}
	t := ts.t
	t.mu.Lock()
	old, ok := t.sizes[name]
	delete(t.sizes, name)
	t.mu.Unlock()
	if ok {
		t.stored.Add(-old)
	}
	return nil
}

type tenantStoreRA struct{ tenantStore }

func (ts *tenantStoreRA) GetAt(ctx context.Context, name string) (ReaderAtCloser, int64, error) {
	return ts.inner.(RandomAccessStore).GetAt(ctx, name)
}

var (
	_ Store             = (*tenantStore)(nil)
	_ RandomAccessStore = (*tenantStoreRA)(nil)
)

// quotaWriter meters an in-flight Put against the tenant's
// stored-bytes budget: bytes are reserved (pending) before they hit
// the wire, so concurrent checkpoints of one tenant cannot jointly
// overshoot the budget and a doomed image stops writing at its first
// over-budget chunk rather than at commit.
type quotaWriter struct {
	w       io.Writer
	t       *poolTenant
	claimed int64 // bytes added to t.pending by this writer
	n       int64 // bytes actually written through
}

func (qw *quotaWriter) Write(b []byte) (int, error) {
	t := qw.t
	pend := t.pending.Add(int64(len(b)))
	qw.claimed += int64(len(b))
	if max := t.quota.MaxStoredBytes; max > 0 && t.stored.Load()+pend > max {
		t.rejectedQuota.Add(1)
		return 0, fmt.Errorf("%w: tenant %q writing %d bytes over the %d-byte stored budget (%d committed)",
			ErrQuotaExceeded, t.name, pend, max, t.stored.Load())
	}
	n, err := qw.w.Write(b)
	qw.n += int64(n)
	return n, err
}

// ---- stats ----

// PoolStats is an aggregate snapshot of the pool.
type PoolStats struct {
	Tenants  int // tenants seen (with state), not just configured
	Sessions int // open sessions
	InFlight int // checkpoints currently admitted
	Waiting  int // checkpoints queued for admission

	Checkpoints uint64 // committed checkpoints
	Restarts    uint64 // completed restarts
	Failures    uint64 // failed checkpoints/restarts (quota aborts included)

	RejectedQuota     uint64 // per-tenant quota rejections (ErrQuotaExceeded)
	RejectedSaturated uint64 // pool-limit rejections (ErrPoolSaturated)

	StoredBytes int64 // committed image bytes across tenants

	ReservedPages    int64 // pages reserved by admitted cuts now
	ReservedPagePeak int64 // high-water mark of ReservedPages
	PageBudget       int64 // configured budget (0: unlimited)

	CheckpointP50 time.Duration
	CheckpointP95 time.Duration
	CheckpointP99 time.Duration
}

// TenantStats is one tenant's slice of PoolStats.
type TenantStats struct {
	Tenant   string
	Quota    TenantQuota
	Sessions int
	InFlight int

	Checkpoints uint64
	Restarts    uint64
	Failures    uint64

	RejectedQuota     uint64
	RejectedSaturated uint64

	StoredBytes int64

	CheckpointP50 time.Duration
	CheckpointP95 time.Duration
	CheckpointP99 time.Duration
}

// Stats snapshots the pool's aggregate counters and checkpoint
// latency percentiles (latency includes the stagger-queue wait: what
// a tenant actually experiences).
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	st := PoolStats{
		Tenants:          len(p.tenants),
		Sessions:         len(p.sessions),
		InFlight:         p.inFlight,
		Waiting:          len(p.waiters),
		ReservedPages:    p.reservedPages,
		ReservedPagePeak: p.reservedPeak,
		PageBudget:       p.cfg.pageBudget,
	}
	var stored int64
	for _, t := range p.tenants {
		stored += t.stored.Load()
	}
	p.mu.Unlock()
	st.StoredBytes = stored
	st.Checkpoints = p.checkpoints.Load()
	st.Restarts = p.restarts.Load()
	st.Failures = p.failures.Load()
	st.RejectedQuota = p.rejectedQuota.Load()
	st.RejectedSaturated = p.rejectedSaturated.Load()
	q := p.lat.quantiles(0.50, 0.95, 0.99)
	st.CheckpointP50, st.CheckpointP95, st.CheckpointP99 = q[0], q[1], q[2]
	return st
}

// TenantStats snapshots one tenant's counters; ok is false if the
// tenant has never touched the pool.
func (p *Pool) TenantStats(tenant string) (TenantStats, bool) {
	p.mu.Lock()
	t := p.tenants[tenant]
	if t == nil {
		p.mu.Unlock()
		return TenantStats{}, false
	}
	st := TenantStats{
		Tenant:   t.name,
		Quota:    t.quota,
		Sessions: t.sessions,
		InFlight: t.inFlight,
	}
	p.mu.Unlock()
	st.Checkpoints = t.checkpoints.Load()
	st.Restarts = t.restarts.Load()
	st.Failures = t.failures.Load()
	st.RejectedQuota = t.rejectedQuota.Load()
	st.RejectedSaturated = t.rejectedSaturated.Load()
	st.StoredBytes = t.stored.Load()
	q := t.lat.quantiles(0.50, 0.95, 0.99)
	st.CheckpointP50, st.CheckpointP95, st.CheckpointP99 = q[0], q[1], q[2]
	return st, true
}

// latencySketch keeps a fixed-size uniform reservoir of checkpoint
// latencies: bounded memory under millions of samples, deterministic
// (seeded) replacement, and exact percentiles while the sample count
// stays under the reservoir size.
type latencySketch struct {
	mu  sync.Mutex
	buf []time.Duration
	n   int64
	rng *rand.Rand
}

const latencyReservoir = 4096

func (l *latencySketch) record(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.n++
	if len(l.buf) < latencyReservoir {
		l.buf = append(l.buf, d)
		return
	}
	if l.rng == nil {
		l.rng = rand.New(rand.NewSource(1))
	}
	if i := l.rng.Int63n(l.n); i < int64(len(l.buf)) {
		l.buf[i] = d
	}
}

// quantiles returns the requested quantiles (0..1, nearest-rank) of
// the sampled distribution; zeros when nothing was recorded.
func (l *latencySketch) quantiles(qs ...float64) []time.Duration {
	l.mu.Lock()
	s := append([]time.Duration(nil), l.buf...)
	l.mu.Unlock()
	out := make([]time.Duration, len(qs))
	if len(s) == 0 {
		return out
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	for i, q := range qs {
		idx := int(q*float64(len(s)-1) + 0.5)
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s) {
			idx = len(s) - 1
		}
		out[i] = s[idx]
	}
	return out
}
