package crac

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SupervisorConfig configures a Supervisor.
type SupervisorConfig struct {
	// Factory builds a fresh session — the supervised "process". It is
	// called once at NewSupervisor and again on every recovery (each
	// restart is a new process in the paper's model). Required.
	Factory func() (*Session, error)
	// Store receives the periodic checkpoints and serves recoveries.
	// Required. It is wrapped in WithRetry(Retry) internally.
	Store Store
	// Prefix names the checkpoint generations: Prefix + a six-digit
	// sequence number ("ckpt-000042"). Default "ckpt-".
	Prefix string
	// Interval is Run's checkpoint cadence. Default 30s.
	Interval time.Duration
	// Retry is the store retry policy (zero: DefaultRetryPolicy).
	Retry RetryPolicy
	// OnEvent, when set, observes the supervisor's state transitions.
	// Called synchronously; keep it fast.
	OnEvent func(SupervisorEvent)
	// CompactAfter, when > 0, runs Compact on a checkpoint whose delta
	// chain reaches that depth — maintenance riding the supervision
	// loop, so chain depth (and lazy-restart fault chains) stays
	// bounded without ever pausing the session. 0 disables compaction.
	CompactAfter int
}

// SupervisorEvent is one supervisor state transition. Kind is one of
// "checkpoint", "checkpoint-failed", "failure", "verify-skip",
// "restart-failed", "recovered", "cold-start", "compact",
// "compact-failed".
type SupervisorEvent struct {
	Kind string
	Name string // the checkpoint image involved, when there is one
	Err  error  // the failure involved, when there is one
}

// SupervisorStats counts a supervisor's life so far.
type SupervisorStats struct {
	Checkpoints        int // committed checkpoints
	CheckpointFailures int
	Failures           int // ReportFailure calls + sessions found dead
	Recoveries         int // successful restarts from a stored image
	ColdStarts         int // recoveries with no usable image
	Compactions        int // chain compactions (cfg.CompactAfter)

	// LastRecoveredFrom names the image of the most recent recovery
	// ("" after a cold start).
	LastRecoveredFrom string
	// LastMTTR / TotalMTTR time the recoveries: from entering recovery
	// to a usable session (the mean time to repair the harness's
	// "faults" experiment reports is TotalMTTR over Recoveries).
	LastMTTR  time.Duration
	TotalMTTR time.Duration
	// CheckpointTime accumulates the wall time of committed
	// checkpoints, for overhead accounting.
	CheckpointTime time.Duration
}

// Supervisor owns a session and its checkpoint store and keeps the
// pair alive: it periodically checkpoints (Run, or Checkpoint driven
// by the caller), detects failure (ReportFailure, a closed session, a
// failed checkpoint), and recovers by restarting a fresh session from
// the newest *verified* image — falling back down the generations when
// the tip is corrupt, and to a cold start when nothing intact remains.
// It extends dmtcp.Coordinator's resume-on-failure into CRAFT-style
// restart supervision for the single-process case.
//
// All methods are safe for concurrent use; checkpoint and recovery
// operations serialize internally.
type Supervisor struct {
	cfg   SupervisorConfig
	store Store // cfg.Store wrapped with retry

	// opMu serializes checkpoint/recover operations end to end.
	opMu sync.Mutex
	// mu guards the fields below.
	mu     sync.Mutex
	sess   *Session
	gen    int
	failed bool
	closed bool
	stats  SupervisorStats
}

// NewSupervisor builds the initial session via cfg.Factory and returns
// a supervisor over it. Generation numbering resumes after any
// existing Prefix-named images in the store, so a supervisor restarted
// over an old store never overwrites surviving checkpoints.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.Factory == nil {
		return nil, errors.New("crac: SupervisorConfig.Factory is required")
	}
	if cfg.Store == nil {
		return nil, errors.New("crac: SupervisorConfig.Store is required")
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "ckpt-"
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	sv := &Supervisor{cfg: cfg, store: WithRetry(cfg.Store, cfg.Retry)}
	if names, err := cfg.Store.List(context.Background()); err == nil {
		for _, name := range names {
			if g, ok := sv.parseGen(name); ok && g >= sv.gen {
				sv.gen = g + 1
			}
		}
	}
	sess, err := cfg.Factory()
	if err != nil {
		return nil, fmt.Errorf("crac: supervisor factory: %w", err)
	}
	sv.sess = sess
	return sv, nil
}

func (sv *Supervisor) genName(g int) string {
	return fmt.Sprintf("%s%06d", sv.cfg.Prefix, g)
}

func (sv *Supervisor) parseGen(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, sv.cfg.Prefix)
	if !ok || Quarantined(name) {
		return 0, false
	}
	g, err := strconv.Atoi(rest)
	if err != nil || g < 0 {
		return 0, false
	}
	return g, true
}

func (sv *Supervisor) emit(ev SupervisorEvent) {
	if sv.cfg.OnEvent != nil {
		sv.cfg.OnEvent(ev)
	}
}

// Session returns the current session. It changes across recoveries;
// callers holding one across a failure must be prepared for
// ErrSessionClosed and re-ask.
func (sv *Supervisor) Session() *Session {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.sess
}

// Stats returns a snapshot of the counters.
func (sv *Supervisor) Stats() SupervisorStats {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.stats
}

// ReportFailure marks the supervised session failed (a poisoned
// workload, an external crash signal). The next Checkpoint — or an
// explicit Recover — restarts from the newest verified image.
func (sv *Supervisor) ReportFailure(err error) {
	sv.mu.Lock()
	sv.failed = true
	sv.stats.Failures++
	sv.mu.Unlock()
	sv.emit(SupervisorEvent{Kind: "failure", Err: err})
}

// Checkpoint takes one supervised checkpoint. A session already marked
// failed is recovered first; a checkpoint that dies on a closed
// session triggers recovery and still reports the checkpoint's error.
func (sv *Supervisor) Checkpoint(ctx context.Context) error {
	sv.opMu.Lock()
	defer sv.opMu.Unlock()
	if err := sv.recoverIfFailedLocked(ctx); err != nil {
		return err
	}
	sv.mu.Lock()
	sess := sv.sess
	name := sv.genName(sv.gen)
	sv.gen++
	sv.mu.Unlock()

	start := time.Now()
	st, err := sess.CheckpointTo(ctx, sv.store, name)
	if err != nil {
		sv.mu.Lock()
		sv.stats.CheckpointFailures++
		sv.mu.Unlock()
		sv.emit(SupervisorEvent{Kind: "checkpoint-failed", Name: name, Err: err})
		if errors.Is(err, ErrSessionClosed) {
			// The session died under us: that is a failure, not just a
			// checkpoint hiccup.
			sv.mu.Lock()
			sv.failed = true
			sv.stats.Failures++
			sv.mu.Unlock()
			sv.emit(SupervisorEvent{Kind: "failure", Err: err})
			if rerr := sv.recoverLocked(ctx); rerr != nil {
				return errors.Join(err, rerr)
			}
		}
		return err
	}
	sv.mu.Lock()
	sv.stats.Checkpoints++
	sv.stats.CheckpointTime += time.Since(start)
	sv.mu.Unlock()
	sv.emit(SupervisorEvent{Kind: "checkpoint", Name: name})

	// Maintenance: a chain that has grown past the configured depth is
	// squashed in place. The session keeps running — Compact works from
	// stored bytes alone — and a compaction failure never fails the
	// checkpoint that triggered it.
	if sv.cfg.CompactAfter > 0 && st.DeltaDepth >= sv.cfg.CompactAfter {
		if _, cerr := Compact(ctx, sv.store, name); cerr != nil {
			sv.emit(SupervisorEvent{Kind: "compact-failed", Name: name, Err: cerr})
		} else {
			sv.mu.Lock()
			sv.stats.Compactions++
			sv.mu.Unlock()
			sv.emit(SupervisorEvent{Kind: "compact", Name: name})
		}
	}
	return nil
}

// Recover restarts the session from the newest verified checkpoint
// (regardless of the failed flag), falling back generation by
// generation past corrupt or unrestorable images, and to a cold start
// (a fresh Factory session, no image) when none survives. It returns
// an error only when no session could be built at all; the supervisor
// is then still failed and a later Recover may retry.
func (sv *Supervisor) Recover(ctx context.Context) error {
	sv.opMu.Lock()
	defer sv.opMu.Unlock()
	return sv.recoverLocked(ctx)
}

// recoverIfFailedLocked recovers only a session marked failed. Caller
// holds opMu.
func (sv *Supervisor) recoverIfFailedLocked(ctx context.Context) error {
	sv.mu.Lock()
	failed := sv.failed
	sv.mu.Unlock()
	if !failed {
		return nil
	}
	return sv.recoverLocked(ctx)
}

// recoverLocked is Recover with opMu already held.
func (sv *Supervisor) recoverLocked(ctx context.Context) error {
	start := time.Now()
	sv.mu.Lock()
	old := sv.sess
	sv.sess = nil
	sv.mu.Unlock()
	if old != nil {
		old.Close()
	}

	// Newest generation first; quarantined and foreign names are
	// already filtered by parseGen.
	names, err := sv.store.List(ctx)
	if err != nil {
		names = nil // fall through: a listing failure means a cold start
	}
	type cand struct {
		gen  int
		name string
	}
	var cands []cand
	for _, name := range names {
		if g, ok := sv.parseGen(name); ok {
			cands = append(cands, cand{gen: g, name: name})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].gen > cands[j].gen })

	finish := func(sess *Session, from string, cold bool) {
		mttr := time.Since(start)
		sv.mu.Lock()
		sv.sess = sess
		sv.failed = false
		if cold {
			sv.stats.ColdStarts++
			sv.stats.LastRecoveredFrom = ""
		} else {
			sv.stats.Recoveries++
			sv.stats.LastRecoveredFrom = from
		}
		sv.stats.LastMTTR = mttr
		sv.stats.TotalMTTR += mttr
		sv.mu.Unlock()
	}

	for _, c := range cands {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Only a fully verified chain is worth restarting from: a
		// corrupt tip falls back to its predecessor instead of failing
		// the restart halfway through a teardown.
		if _, err := VerifyChain(ctx, sv.store, c.name); err != nil {
			sv.emit(SupervisorEvent{Kind: "verify-skip", Name: c.name, Err: err})
			continue
		}
		sess, err := sv.cfg.Factory()
		if err != nil {
			return fmt.Errorf("crac: supervisor factory: %w", err)
		}
		if err := sess.RestartFrom(ctx, sv.store, c.name); err != nil {
			sess.Close()
			sv.emit(SupervisorEvent{Kind: "restart-failed", Name: c.name, Err: err})
			continue
		}
		finish(sess, c.name, false)
		sv.emit(SupervisorEvent{Kind: "recovered", Name: c.name})
		return nil
	}

	// Nothing intact: cold start.
	sess, err := sv.cfg.Factory()
	if err != nil {
		sv.mu.Lock()
		sv.failed = true
		sv.mu.Unlock()
		return fmt.Errorf("crac: supervisor cold start: %w", err)
	}
	finish(sess, "", true)
	sv.emit(SupervisorEvent{Kind: "cold-start"})
	return nil
}

// Run checkpoints every cfg.Interval until ctx ends, recovering from
// failures as they surface. Checkpoint errors are reported through
// OnEvent and counted; Run itself returns only ctx's error.
func (sv *Supervisor) Run(ctx context.Context) error {
	t := time.NewTicker(sv.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			sv.mu.Lock()
			closed := sv.closed
			sv.mu.Unlock()
			if closed {
				return nil
			}
			_ = sv.Checkpoint(ctx)
		}
	}
}

// Close shuts the supervisor down, closing the current session. The
// supervisor must not be used afterwards.
func (sv *Supervisor) Close() {
	sv.opMu.Lock()
	defer sv.opMu.Unlock()
	sv.mu.Lock()
	sess := sv.sess
	sv.sess = nil
	sv.closed = true
	sv.mu.Unlock()
	if sess != nil {
		sess.Close()
	}
}
